package core

import (
	"context"
	"fmt"
	"math"
	"slices"

	"repro/internal/graph"
	"repro/internal/mapreduce"
)

// StackOptions configures the stack algorithms.
type StackOptions struct {
	// MR is the MapReduce configuration for every job.
	MR mapreduce.Config
	// Eps is the slackness parameter ε > 0 of Algorithm 2. It controls
	// the layer capacities (⌈ε·b(v)⌉ edges per node per layer), the
	// weakly-covered threshold w(e)/(3+2ε), the capacity-violation
	// bound (1+ε), and the approximation guarantee 1/(6+ε). The
	// paper's experiments use ε = 1. Zero defaults to 1.
	Eps float64
	// Strategy selects the marking strategy of the maximal-matching
	// subroutine: MarkRandom for StackMR, MarkHeaviest for
	// StackGreedyMR.
	Strategy MarkingStrategy
	// Seed drives all randomized decisions; runs with equal seeds are
	// identical.
	Seed int64
	// MaxRounds aborts the computation when exceeded. Zero means
	// 64·|E|+256, far above the poly-logarithmic expectation; hitting
	// it indicates a bug.
	MaxRounds int
}

func (o *StackOptions) setDefaults(g *graph.Bipartite) {
	if o.Eps == 0 {
		o.Eps = 1
	}
	if o.MaxRounds == 0 {
		o.MaxRounds = 64*g.NumEdges() + 256
	}
}

// StackMR computes a b-matching with the primal-dual stack algorithm of
// Section 5.2 (Algorithm 2). The algorithm has an approximation
// guarantee of 1/(6+ε) and may violate node capacities by a factor of at
// most (1+ε).
//
// Push phase: repeatedly compute a maximal matching with per-layer node
// capacities ⌈ε·b(v)⌉ (the Garrido et al. procedure, four MapReduce jobs
// per iteration), push it on the stack as a layer, raise the dual
// variables of the pushed edges by δ(e) = (w(e) − y_u/b(u) − y_v/b(v))/2,
// and delete every edge that became weakly covered
// (y_u/b(u) + y_v/b(v) ≥ w(e)/(3+2ε)). Stacked edges leave the working
// graph, so the push phase ends once every edge is stacked or removed.
//
// Pop phase: layers pop in LIFO order; all edges of a layer whose
// endpoints are still present join the solution in parallel (one
// MapReduce job per layer), capacities decrease, and exhausted nodes are
// removed together with their not-yet-popped edges. Because a layer may
// hold up to ⌈ε·b(v)⌉ edges of a node, the final degree can overshoot
// b(v) — this is the (1+ε) violation that Figure 4 measures.
func StackMR(ctx context.Context, g *graph.Bipartite, opts StackOptions) (*Result, error) {
	opts.setDefaults(g)
	if opts.Eps < 0 {
		return nil, fmt.Errorf("core: negative eps %v", opts.Eps)
	}
	driver := mapreduce.NewDriver(opts.MR)
	driver.MaxRounds = opts.MaxRounds

	st := &stackState{g: g, opts: opts, y: make([]float64, g.NumNodes()),
		delta: make(map[int32]float64)}
	if err := st.push(ctx, driver); err != nil {
		return nil, err
	}
	included, err := st.pop(ctx, driver)
	if err != nil {
		return nil, err
	}
	return &Result{
		Matching:    NewMatching(g, included),
		Rounds:      driver.Rounds(),
		Phases:      len(st.layers),
		Shuffle:     driver.Total(),
		RoundStats:  driver.Trace(),
		Certificate: &DualCertificate{Y: st.y, Eps: opts.Eps, g: g},
	}, nil
}

// StackGreedyMR is StackMR with the greedy marking strategy: in the
// maximal-matching subroutine nodes mark their heaviest incident edges
// instead of random ones (paper Section 6, "Variants").
func StackGreedyMR(ctx context.Context, g *graph.Bipartite, opts StackOptions) (*Result, error) {
	opts.Strategy = MarkHeaviest
	return StackMR(ctx, g, opts)
}

// stackState carries the evolving algorithm state between jobs.
type stackState struct {
	g    *graph.Bipartite
	opts StackOptions
	// y holds the dual variables, indexed by node.
	y []float64
	// layers holds the stacked edge ids, one slice per layer in push
	// order.
	layers [][]int32
	// delta records δ(e) for every stacked edge; the strict variant
	// (Algorithm 1) prioritizes overflow edges by these values.
	delta map[int32]float64
}

// layerCap returns the per-layer capacity ⌈ε·b(v)⌉ (at least 1 for nodes
// with positive capacity).
func (st *stackState) layerCap(b int) int {
	lc := int(math.Ceil(st.opts.Eps * float64(b)))
	if lc < 1 {
		lc = 1
	}
	if lc > b {
		lc = b
	}
	return lc
}

// push runs the push phase: maximal matching, dual update, weakly-covered
// removal, until the working graph is empty.
//
// The layer loop is a partition-resident dataflow: the node view is
// hash-partitioned once, and every job of every layer — the
// maximal-matching stages, the dual update, the filter — consumes the
// previous job's output partition-by-partition. The per-layer capacity
// override is a key-preserving MapValues, so it never moves a record.
// The fixed point (no live edges) coincides with an empty state because
// the filter reduce emits only nodes that kept at least one edge.
func (st *stackState) push(ctx context.Context, driver *mapreduce.Driver) error {
	records := mapreduce.PartitionDataset(nodeRecords(st.g), driver.Partitions())
	_, err := mapreduce.Loop(ctx, driver, records, func(
		ctx context.Context, layerNo int, recs *mapreduce.Dataset[graph.NodeID, nodeState],
	) (*mapreduce.Dataset[graph.NodeID, nodeState], error) {
		// Per-layer capacities for the maximal matching.
		layerRecs := mapreduce.MapValues(recs, func(_ graph.NodeID, s nodeState) (nodeState, bool) {
			return nodeState{B: st.layerCap(s.B), Adj: s.Adj}, true
		})
		layer, err := maximalBMatching(ctx, driver, layerRecs, maximalConfig{
			strategy: st.opts.Strategy,
			seed:     st.opts.Seed + int64(layerNo)*7919,
		})
		layerRecs.Recycle() // consumed by the matching's flagged view
		if err != nil {
			return nil, fmt.Errorf("core: stack push layer %d: %w", layerNo, err)
		}
		if len(layer) == 0 {
			// A maximal matching over a non-empty graph is non-empty;
			// guard against an impossible stall anyway.
			return nil, fmt.Errorf("core: stack push layer %d: empty maximal matching over %d live half-edges",
				layerNo, countLiveEdges(recs))
		}
		st.layers = append(st.layers, layer)
		// Record δ(e) from the pre-layer duals (the same values the
		// update job's reducers compute).
		for _, ei := range layer {
			e := st.g.Edge(int(ei))
			bu := float64(intCap(st.g, e.Item))
			bv := float64(intCap(st.g, e.Consumer))
			st.delta[ei] = (e.Weight - st.y[e.Item]/bu - st.y[e.Consumer]/bv) / 2
		}

		// Dual update job: δ contributions flow along layer edges.
		if err := st.updateDuals(ctx, driver, recs, layer); err != nil {
			return nil, err
		}
		// Filter job: stacked edges leave the graph, weakly covered
		// edges are removed.
		return st.filterEdges(ctx, driver, recs, layer)
	})
	return err
}

// dualMsg carries y_u/b(u) of the sending endpoint along a layer edge,
// or the node's own record.
type dualMsg struct {
	self   *nodeState
	edge   int32
	yOverB float64
}

// updateDuals runs one MapReduce job in which every node raises its dual
// variable by the sum of δ(e) over its layer edges, computed from the
// pre-layer duals of both endpoints (all edges of a layer push in
// parallel, as in the parallel algorithm of Section 5.2).
//
// The reducer sums the δ contributions in the node's own adjacency
// order (messages are gathered into a per-edge map first), not in
// message-arrival order: floating-point addition is order-sensitive,
// and arrival order depends on how the input was split across map
// tasks, which differs between the partition-resident and the flat
// dataflow. Summing in adjacency order makes the duals bit-identical
// under either chaining mode.
func (st *stackState) updateDuals(
	ctx context.Context,
	driver *mapreduce.Driver,
	records *mapreduce.Dataset[graph.NodeID, nodeState],
	layer []int32,
) error {
	inLayer := make(map[int32]bool, len(layer))
	for _, ei := range layer {
		inLayer[ei] = true
	}
	y := st.y
	cfg := driver.Config("stack-update")
	if cfg.Shuffle.Backend == mapreduce.ShuffleDist {
		// The reduce closes over the current duals; ship them so the
		// workers' registered factory rebuilds the identical closure.
		cfg.DistParams = encodeStackParams(y, nil, 0)
	}
	out, stats, err := mapreduce.RunDS(ctx, cfg, records,
		func(v graph.NodeID, s nodeState, out mapreduce.Emitter[graph.NodeID, dualMsg]) error {
			sCopy := s
			out.Emit(v, dualMsg{self: &sCopy})
			yb := y[v] / float64(s.B)
			for _, h := range s.Adj {
				if inLayer[h.ID] {
					out.Emit(h.Other, dualMsg{edge: h.ID, yOverB: yb})
				}
			}
			return nil
		},
		dualUpdateReduce(y))
	if err != nil {
		return fmt.Errorf("core: stack-update: %w", err)
	}
	if err := driver.Observe(stats); err != nil {
		return err
	}
	if err := out.Materialize(); err != nil {
		return fmt.Errorf("core: stack-update: %w", err)
	}
	out.Each(func(v graph.NodeID, d float64) { st.y[v] += d })
	out.Recycle()
	return nil
}

// dualUpdateReduce builds the stack-update reduce over the given duals:
// node v raises y(v) by the sum of its layer edges' positive δ, folded
// in adjacency order for bit-identical floats under any dataflow. The
// constructor form is what lets a dist worker rebuild the exact closure
// from shipped parameters (see RegisterDistJobs).
func dualUpdateReduce(y []float64) mapreduce.ReduceFunc[graph.NodeID, dualMsg, graph.NodeID, float64] {
	return func(v graph.NodeID, msgs []dualMsg, out mapreduce.Emitter[graph.NodeID, float64]) error {
		var self *nodeState
		otherYB := make(map[int32]float64, len(msgs))
		for _, m := range msgs {
			if m.self != nil {
				self = m.self
				continue
			}
			otherYB[m.edge] = m.yOverB
		}
		if self == nil {
			return nil
		}
		ybSelf := y[v] / float64(self.B)
		var sumDelta float64
		for _, h := range self.Adj {
			yb, ok := otherYB[h.ID]
			if !ok {
				continue
			}
			delta := (h.W - ybSelf - yb) / 2
			if delta > 0 {
				sumDelta += delta
			}
		}
		if sumDelta > 0 {
			out.Emit(v, sumDelta)
		}
		return nil
	}
}

// filterMsg carries the post-update y_u/b(u) of the sending endpoint
// along every edge, or the node's own record.
type filterMsg struct {
	self   *nodeState
	edge   int32
	yOverB float64
}

// filterEdges runs one MapReduce job that removes stacked edges and
// weakly covered edges (Definition 1) from the working graph. Both
// endpoints evaluate the same inequality on the same values, so their
// views stay consistent.
func (st *stackState) filterEdges(
	ctx context.Context,
	driver *mapreduce.Driver,
	records *mapreduce.Dataset[graph.NodeID, nodeState],
	layer []int32,
) (*mapreduce.Dataset[graph.NodeID, nodeState], error) {
	inLayer := make(map[int32]bool, len(layer))
	for _, ei := range layer {
		inLayer[ei] = true
	}
	y := st.y
	threshold := 1.0 / (3 + 2*st.opts.Eps)
	cfg := driver.Config("stack-filter")
	if cfg.Shuffle.Backend == mapreduce.ShuffleDist {
		cfg.DistParams = encodeStackParams(y, layer, threshold)
	}
	out, stats, err := mapreduce.RunDS(ctx, cfg, records,
		func(v graph.NodeID, s nodeState, out mapreduce.Emitter[graph.NodeID, filterMsg]) error {
			sCopy := s
			out.Emit(v, filterMsg{self: &sCopy})
			yb := y[v] / float64(s.B)
			for _, h := range s.Adj {
				out.Emit(h.Other, filterMsg{edge: h.ID, yOverB: yb})
			}
			return nil
		},
		stackFilterReduce(y, inLayer, threshold))
	if err != nil {
		return nil, fmt.Errorf("core: stack-filter: %w", err)
	}
	if err := driver.Observe(stats); err != nil {
		return nil, err
	}
	if err := out.Materialize(); err != nil {
		return nil, fmt.Errorf("core: stack-filter: %w", err)
	}
	// The reducer emits each surviving node under its own key, so the
	// output Dataset is aligned as-is: it IS the next layer's input.
	return out, nil
}

// stackFilterReduce builds the stack-filter reduce over the post-update
// duals, the stacked layer, and the weakly-covered threshold — the
// other parameterized closure the dist workers rebuild from shipped
// state.
func stackFilterReduce(y []float64, inLayer map[int32]bool, threshold float64) mapreduce.ReduceFunc[graph.NodeID, filterMsg, graph.NodeID, nodeState] {
	return func(v graph.NodeID, msgs []filterMsg, out mapreduce.Emitter[graph.NodeID, nodeState]) error {
		var self *nodeState
		for _, m := range msgs {
			if m.self != nil {
				self = m.self
				break
			}
		}
		if self == nil {
			return nil
		}
		ybSelf := y[v] / float64(self.B)
		otherYB := make(map[int32]float64, len(msgs))
		for _, m := range msgs {
			if m.self == nil {
				otherYB[m.edge] = m.yOverB
			}
		}
		next := nodeState{B: self.B}
		for _, h := range self.Adj {
			if inLayer[h.ID] {
				continue // stacked: leaves the working graph
			}
			yb, ok := otherYB[h.ID]
			if !ok {
				continue // neighbor gone
			}
			if ybSelf+yb >= threshold*h.W-1e-15 {
				continue // weakly covered: removed
			}
			next.Adj = append(next.Adj, h)
		}
		if len(next.Adj) > 0 {
			out.Emit(v, next)
		}
		return nil
	}
}

// pop runs the pop phase: one MapReduce job per layer, in LIFO order.
// The job's mappers emit, for each stacked edge of the layer, whether its
// endpoint is still present; the reducers (keyed by edge) include the
// edge when both endpoints are. Capacity bookkeeping happens between
// jobs, exactly as Algorithm 2 lines 13-16 prescribe.
func (st *stackState) pop(ctx context.Context, driver *mapreduce.Driver) ([]int32, error) {
	g := st.g
	residual := make([]int, g.NumNodes())
	for v := range residual {
		residual[v] = intCap(g, graph.NodeID(v))
	}
	var included []int32
	for l := len(st.layers) - 1; l >= 0; l-- {
		layer := st.layers[l]
		// Node-based view of the layer: node -> its stacked edges.
		perNode := make(map[graph.NodeID][]int32)
		for _, ei := range layer {
			e := g.Edge(int(ei))
			perNode[e.Item] = append(perNode[e.Item], ei)
			perNode[e.Consumer] = append(perNode[e.Consumer], ei)
		}
		input := nodePairsSorted(perNode)
		// The pop job re-keys from nodes to edges, so every emitted pair
		// is a cross-partition message (no identity route); its output is
		// collected flat — in ascending edge order — because the capacity
		// bookkeeping below happens driver-side between layers.
		out, err := mapreduce.RunJobDS(ctx, driver, "stack-pop",
			mapreduce.PartitionDataset(input, driver.Partitions()),
			func(v graph.NodeID, edges []int32, out mapreduce.Emitter[int32, bool]) error {
				alive := residual[v] > 0
				for _, ei := range edges {
					out.Emit(ei, alive)
				}
				return nil
			},
			stackPopReduce)
		if err != nil {
			return nil, fmt.Errorf("core: stack-pop layer %d: %w", l, err)
		}
		if err := out.Materialize(); err != nil {
			return nil, fmt.Errorf("core: stack-pop layer %d: %w", l, err)
		}
		for _, p := range out.Collect() {
			e := g.Edge(int(p.Key))
			included = append(included, p.Key)
			residual[e.Item]--
			residual[e.Consumer]--
		}
		out.Recycle()
	}
	return included, nil
}

// stackPopReduce includes a layer edge when both endpoints reported
// themselves alive. Stateless, so dist workers register it as-is.
func stackPopReduce(ei int32, alive []bool, out mapreduce.Emitter[int32, bool]) error {
	if len(alive) == 2 && alive[0] && alive[1] {
		out.Emit(ei, true)
	}
	return nil
}

// nodePairsSorted flattens a per-node adjacency map into job input in
// ascending node order. The engine's group-sort would normalize key
// order anyway (keys here are unique), but feeding jobs in map
// iteration order makes every downstream byte depend on that
// normalization holding; sorting here keeps the bit-identical-backends
// invariant locally evident. Flagged by repolint's determinism rule
// before this existed.
func nodePairsSorted(perNode map[graph.NodeID][]int32) []mapreduce.Pair[graph.NodeID, []int32] {
	input := make([]mapreduce.Pair[graph.NodeID, []int32], 0, len(perNode))
	for v, edges := range perNode {
		input = append(input, mapreduce.P(v, edges))
	}
	slices.SortFunc(input, func(a, b mapreduce.Pair[graph.NodeID, []int32]) int {
		return int(a.Key) - int(b.Key)
	})
	return input
}
