package core

import (
	"context"
	"testing"

	"repro/internal/flow"
	"repro/internal/graph"
)

func stackOpts(eps float64, seed int64) StackOptions {
	return StackOptions{MR: testMR, Eps: eps, Seed: seed}
}

func TestStackMRViolationBound(t *testing.T) {
	// Theorem 1: capacities are violated by a factor of at most (1+ε).
	ctx := context.Background()
	for _, eps := range []float64{0.25, 0.5, 1} {
		for seed := int64(0); seed < 10; seed++ {
			g := graph.RandomBipartite(graph.RandomConfig{
				NumItems: 10, NumConsumers: 8, EdgeProb: 0.5,
				MaxWeight: 4, MaxCapacity: 3, Seed: seed,
			})
			res, err := StackMR(ctx, g, stackOpts(eps, seed))
			if err != nil {
				t.Fatalf("eps=%v seed=%d: %v", eps, seed, err)
			}
			if err := res.Matching.Validate(1 + eps); err != nil {
				t.Errorf("eps=%v seed=%d: %v", eps, seed, err)
			}
		}
	}
}

func TestStackMRApproximationGuarantee(t *testing.T) {
	// Theorem 1: value ≥ OPT/(6+ε).
	ctx := context.Background()
	const eps = 1.0
	for seed := int64(0); seed < 25; seed++ {
		g := graph.RandomBipartite(graph.RandomConfig{
			NumItems: 7, NumConsumers: 6, EdgeProb: 0.5,
			MaxWeight: 5, MaxCapacity: 2, Seed: seed + 300,
		})
		res, err := StackMR(ctx, g, stackOpts(eps, seed))
		if err != nil {
			t.Fatal(err)
		}
		_, opt, err := flow.MaxWeightBMatching(g)
		if err != nil {
			t.Fatal(err)
		}
		if res.Matching.Value() < opt/(6+eps)-1e-9 {
			t.Errorf("seed %d: stackmr %v < OPT/(6+eps) = %v",
				seed, res.Matching.Value(), opt/(6+eps))
		}
	}
}

func TestStackMRDeterministicUnderSeed(t *testing.T) {
	ctx := context.Background()
	g := graph.RandomBipartite(graph.RandomConfig{
		NumItems: 10, NumConsumers: 10, EdgeProb: 0.4,
		MaxWeight: 3, MaxCapacity: 2, Seed: 21,
	})
	a, err := StackMR(ctx, g, stackOpts(1, 42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := StackMR(ctx, g, stackOpts(1, 42))
	if err != nil {
		t.Fatal(err)
	}
	ia, ib := a.Matching.EdgeIndexes(), b.Matching.EdgeIndexes()
	if len(ia) != len(ib) {
		t.Fatal("same seed, different sizes")
	}
	for i := range ia {
		if ia[i] != ib[i] {
			t.Fatal("same seed, different matchings")
		}
	}
	if a.Rounds != b.Rounds {
		t.Error("same seed, different round counts")
	}
}

func TestStackMRSingleEdge(t *testing.T) {
	ctx := context.Background()
	g := graph.NewBipartite(1, 1)
	g.SetCapacity(0, 1)
	g.SetCapacity(1, 1)
	g.AddEdge(0, 1, 3)
	res, err := StackMR(ctx, g, stackOpts(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Matching.Size() != 1 || res.Matching.Value() != 3 {
		t.Errorf("size=%d value=%v", res.Matching.Size(), res.Matching.Value())
	}
	if res.Phases < 1 {
		t.Error("no layers recorded")
	}
}

func TestStackMREmptyGraph(t *testing.T) {
	ctx := context.Background()
	g := graph.NewBipartite(3, 3)
	g.SetAllCapacities(graph.ItemSide, 1)
	g.SetAllCapacities(graph.ConsumerSide, 1)
	res, err := StackMR(ctx, g, stackOpts(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Matching.Size() != 0 || res.Rounds != 0 {
		t.Errorf("size=%d rounds=%d", res.Matching.Size(), res.Rounds)
	}
}

func TestStackMRNegativeEps(t *testing.T) {
	ctx := context.Background()
	g := graph.NewBipartite(1, 1)
	g.SetCapacity(0, 1)
	g.SetCapacity(1, 1)
	g.AddEdge(0, 1, 1)
	if _, err := StackMR(ctx, g, StackOptions{MR: testMR, Eps: -0.5}); err == nil {
		t.Error("negative eps accepted")
	}
}

func TestStackGreedyMRFeasibilityAndQuality(t *testing.T) {
	// StackGreedyMR must obey the same violation bound; the paper finds
	// it slightly better than StackMR on value, which we check in
	// aggregate over seeds (not per instance, since it is a heuristic).
	ctx := context.Background()
	const eps = 1.0
	var sumStack, sumGreedyStack float64
	for seed := int64(0); seed < 12; seed++ {
		g := graph.RandomBipartite(graph.RandomConfig{
			NumItems: 12, NumConsumers: 10, EdgeProb: 0.4,
			MaxWeight: 4, MaxCapacity: 2, Seed: seed + 900,
		})
		rs, err := StackMR(ctx, g, stackOpts(eps, seed))
		if err != nil {
			t.Fatal(err)
		}
		rg, err := StackGreedyMR(ctx, g, stackOpts(eps, seed))
		if err != nil {
			t.Fatal(err)
		}
		if err := rg.Matching.Validate(1 + eps); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
		sumStack += rs.Matching.Value()
		sumGreedyStack += rg.Matching.Value()
	}
	if sumGreedyStack < 0.9*sumStack {
		t.Errorf("StackGreedyMR aggregate value %v far below StackMR %v",
			sumGreedyStack, sumStack)
	}
}

func TestStackMRPhasesAreLayers(t *testing.T) {
	ctx := context.Background()
	g := graph.RandomBipartite(graph.RandomConfig{
		NumItems: 15, NumConsumers: 12, EdgeProb: 0.3,
		MaxWeight: 8, MaxCapacity: 3, Seed: 4,
	})
	res, err := StackMR(ctx, g, stackOpts(1, 4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Phases <= 0 {
		t.Error("no layers")
	}
	// Rounds must cover at least: per layer 4 Garrido stage jobs (one
	// iteration minimum) + update + filter, plus one pop job per layer.
	if res.Rounds < res.Phases*7 {
		t.Errorf("rounds %d implausibly small for %d layers", res.Rounds, res.Phases)
	}
}

func TestStackSequentialFeasibleAndGuarantee(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		g := graph.RandomBipartite(graph.RandomConfig{
			NumItems: 7, NumConsumers: 7, EdgeProb: 0.5,
			MaxWeight: 6, MaxCapacity: 2, Seed: seed + 60,
		})
		res := StackSequential(g, 1)
		if err := res.Matching.Validate(1); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		_, opt, err := flow.MaxWeightBMatching(g)
		if err != nil {
			t.Fatal(err)
		}
		if res.Matching.Value() < opt/7-1e-9 {
			t.Errorf("seed %d: stackseq %v < OPT/7 = %v", seed, res.Matching.Value(), opt/7)
		}
	}
}

func TestStackSequentialDefaultEps(t *testing.T) {
	g := graph.GreedyTightCase(0.5)
	a := StackSequential(g, 0) // defaults to 1
	b := StackSequential(g, 1)
	if a.Matching.Value() != b.Matching.Value() {
		t.Error("eps default mismatch")
	}
}

func TestStackAlgorithmsOnPath(t *testing.T) {
	// The GreedyMR worst case is easy for the stack algorithms: the
	// number of rounds should stay far below the path length.
	ctx := context.Background()
	const k = 40
	g := graph.PathGraph(k)
	res, err := StackMR(ctx, g, stackOpts(1, 7))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Matching.Validate(2); err != nil {
		t.Error(err)
	}
	if res.Matching.Size() == 0 {
		t.Error("empty matching on path")
	}
	greedyRes, err := GreedyMR(ctx, g, GreedyMROptions{MR: testMR})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("path-%d: stack rounds=%d layers=%d, greedymr rounds=%d",
		k, res.Rounds, res.Phases, greedyRes.Rounds)
}

// Pins the job-input ordering that repolint's determinism rule enforces:
// StackMR's pop and strict-filter phases flatten per-node adjacency maps
// into job input, and that input must come out in ascending node order
// regardless of map iteration order. If nodePairsSorted regressed to raw
// map order, every downstream byte would depend on the engine's group-sort
// alone to restore determinism.
func TestNodePairsSortedAscending(t *testing.T) {
	perNode := map[graph.NodeID][]int32{
		7: {70, 71},
		0: {1},
		3: nil,
		5: {50},
		1: {10, 11, 12},
	}
	for trial := 0; trial < 8; trial++ {
		got := nodePairsSorted(perNode)
		if len(got) != len(perNode) {
			t.Fatalf("trial %d: %d pairs, want %d", trial, len(got), len(perNode))
		}
		for i, p := range got {
			if i > 0 && got[i-1].Key >= p.Key {
				t.Fatalf("trial %d: keys not strictly ascending at %d: %v then %v",
					trial, i, got[i-1].Key, p.Key)
			}
			want := perNode[p.Key]
			if len(p.Value) != len(want) {
				t.Fatalf("trial %d: node %d: got %v want %v", trial, p.Key, p.Value, want)
			}
			for j := range want {
				if p.Value[j] != want[j] {
					t.Fatalf("trial %d: node %d: got %v want %v", trial, p.Key, p.Value, want)
				}
			}
		}
	}
}
