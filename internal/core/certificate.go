package core

import (
	"fmt"

	"repro/internal/graph"
)

// DualCertificate is the by-product of the primal-dual stack algorithms
// that makes their quality auditable per run: the final dual variables
// y. The primal-dual schema (Section 5.2) guarantees that when the push
// phase ends, every edge e = (u,v) is at least weakly covered,
//
//	y_u/b(u) + y_v/b(v) ≥ w(e)/(3+2ε),
//
// so the scaled duals (3+2ε)·y are a feasible solution of the dual
// program (DP) and weak LP duality bounds the optimum:
//
//	OPT ≤ OPT_LP ≤ (3+2ε) · Σ_v y_v.
//
// Bound() exposes that value; dividing the achieved matching value by it
// certifies an approximation factor for this specific run — usually far
// better than the worst-case 1/(6+ε).
type DualCertificate struct {
	// Y holds the final dual variable of every node.
	Y []float64
	// Eps is the slackness parameter the duals were computed with.
	Eps float64

	g *graph.Bipartite
}

// Bound returns the certified upper bound (3+2ε)·Σy on the optimum
// matching value.
func (c *DualCertificate) Bound() float64 {
	var sum float64
	for _, y := range c.Y {
		sum += y
	}
	return (3 + 2*c.Eps) * sum
}

// Verify checks the weak-cover invariant edge by edge and returns the
// first violation; nil means the certificate is valid and Bound() is a
// genuine upper bound on OPT.
func (c *DualCertificate) Verify() error {
	if c.g == nil {
		return fmt.Errorf("core: certificate has no graph")
	}
	threshold := 1.0 / (3 + 2*c.Eps)
	for i := 0; i < c.g.NumEdges(); i++ {
		e := c.g.Edge(i)
		bu := float64(intCap(c.g, e.Item))
		bv := float64(intCap(c.g, e.Consumer))
		if bu == 0 || bv == 0 {
			continue // edges at zero-capacity nodes never enter any matching
		}
		cover := c.Y[e.Item]/bu + c.Y[e.Consumer]/bv
		if cover < threshold*e.Weight-1e-9 {
			return fmt.Errorf("core: edge %d (w=%g) not weakly covered: %g < %g",
				i, e.Weight, cover, threshold*e.Weight)
		}
	}
	return nil
}

// CertifiedRatio returns value/Bound(), a per-run lower bound on the
// achieved approximation factor (compare with the worst case 1/(6+ε)).
func (c *DualCertificate) CertifiedRatio(value float64) float64 {
	b := c.Bound()
	if b == 0 {
		return 0
	}
	return value / b
}
