package core

import (
	"reflect"
	"slices"
	"sort"
	"testing"

	"repro/internal/graph"
	"repro/internal/mapreduce"
)

func TestTopByWeight(t *testing.T) {
	adj := []half{
		{ID: 0, Other: 10, W: 1.0},
		{ID: 1, Other: 11, W: 3.0},
		{ID: 2, Other: 12, W: 2.0},
		{ID: 3, Other: 13, W: 3.0}, // tie with ID 1: lower id wins
	}
	got := topByWeight(adj, 2, nil)
	if len(got) != 2 || adj[got[0]].ID != 1 || adj[got[1]].ID != 3 {
		t.Errorf("topByWeight(2) picked %v", got)
	}
	if got := topByWeight(adj, 0, nil); got != nil {
		t.Errorf("topByWeight(0) = %v", got)
	}
	if got := topByWeight(adj, 10, nil); len(got) != 4 {
		t.Errorf("topByWeight(10) returned %d", len(got))
	}
	if got := topByWeight(nil, 3, nil); len(got) != 0 {
		t.Errorf("topByWeight(nil) = %v", got)
	}
}

func TestSortedSliceMembership(t *testing.T) {
	marks := []int32{9, 2, 5}
	slices.Sort(marks)
	for _, x := range []int32{2, 5, 9} {
		if !sortedContains(marks, x) {
			t.Errorf("sortedContains(%v, %d) = false", marks, x)
		}
	}
	for _, x := range []int32{0, 3, 10} {
		if sortedContains(marks, x) {
			t.Errorf("sortedContains(%v, %d) = true", marks, x)
		}
	}
	idx := []int{4, 0, 2}
	sort.Ints(idx)
	if !sortedContains(idx, 2) || sortedContains(idx, 3) {
		t.Errorf("sortedContains membership wrong for %v", idx)
	}
}

func TestNodeRecordsSkipsZeroCapacityAndIsolated(t *testing.T) {
	g := graph.NewBipartite(3, 2)
	g.SetCapacity(g.ItemID(0), 1)
	g.SetCapacity(g.ItemID(1), 0) // zero capacity: excluded
	g.SetCapacity(g.ItemID(2), 1) // isolated: excluded
	g.SetCapacity(g.ConsumerID(0), 1)
	g.SetCapacity(g.ConsumerID(1), 2)
	g.AddEdge(g.ItemID(0), g.ConsumerID(0), 1)
	g.AddEdge(g.ItemID(1), g.ConsumerID(1), 1) // to zero-cap item

	recs := nodeRecords(g)
	byNode := map[graph.NodeID]nodeState{}
	for _, r := range recs {
		byNode[r.Key] = r.Value
	}
	if _, ok := byNode[g.ItemID(1)]; ok {
		t.Error("zero-capacity node got a record")
	}
	if _, ok := byNode[g.ItemID(2)]; ok {
		t.Error("isolated node got a record")
	}
	if _, ok := byNode[g.ConsumerID(1)]; ok {
		t.Error("consumer with only dead edges got a record")
	}
	if st, ok := byNode[g.ItemID(0)]; !ok || len(st.Adj) != 1 || st.B != 1 {
		t.Errorf("item 0 record wrong: %+v", st)
	}
	// Edge counting: each live edge appears at both endpoints.
	if got := countLiveEdges(mapreduce.PartitionDataset(recs, 3)); got != 2 {
		t.Errorf("countLiveEdges = %d, want 2 (one edge, two views)", got)
	}
}

func TestLayerCap(t *testing.T) {
	st := &stackState{opts: StackOptions{Eps: 0.25}}
	cases := map[int]int{1: 1, 4: 1, 5: 2, 8: 2, 100: 25}
	for b, want := range cases {
		if got := st.layerCap(b); got != want {
			t.Errorf("layerCap(%d) with eps=0.25 = %d, want %d", b, got, want)
		}
	}
	st.opts.Eps = 1
	for _, b := range []int{1, 3, 10} {
		if got := st.layerCap(b); got != b {
			t.Errorf("layerCap(%d) with eps=1 = %d, want b", b, got)
		}
	}
	// Eps above 1 clamps to b (a layer can never exceed the capacity).
	st.opts.Eps = 3
	if got := st.layerCap(4); got != 4 {
		t.Errorf("layerCap(4) with eps=3 = %d, want 4", got)
	}
}

func TestDedupe(t *testing.T) {
	got := dedupe([]int32{1, 1, 2, 3, 3, 3, 4})
	want := []int32{1, 2, 3, 4}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("dedupe = %v", got)
	}
	if got := dedupe(nil); len(got) != 0 {
		t.Errorf("dedupe(nil) = %v", got)
	}
}
