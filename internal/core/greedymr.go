package core

import (
	"context"
	"fmt"
	"slices"
	"sync"

	"repro/internal/graph"
	"repro/internal/mapreduce"
)

// GreedyMROptions configures GreedyMR.
type GreedyMROptions struct {
	// MR is the MapReduce configuration for every round.
	MR mapreduce.Config
	// MaxRounds aborts the computation when exceeded (a safety net:
	// GreedyMR always terminates, but its round count can be linear in
	// the worst case). Zero means 4·|E|+16, which is always enough
	// because every round matches or drops at least one edge.
	MaxRounds int
	// StopAfterRounds, when positive, stops the algorithm early and
	// returns the current (feasible) solution: the any-time property
	// of Section 5.4.
	StopAfterRounds int
}

// GreedyMR computes a b-matching with the MapReduce adaptation of the
// greedy algorithm (paper Section 5.4, Algorithm 3).
//
// Each MapReduce round: in the map phase every node v proposes its
// (residual) b(v) heaviest incident edges to its neighbors; in the reduce
// phase every node intersects its own proposals with those of its
// neighbors, includes the intersection in the matching, decrements its
// capacity, and drops out when saturated. The solution after every round
// is feasible, so the algorithm can be stopped at any time.
//
// The returned Result has one ValueTrace entry per round (Figure 5 plots
// exactly this trace) and Rounds equal to the number of MapReduce jobs,
// one per greedy iteration.
//
// The rounds chain through a partition-resident Dataset: the node
// records are hash-partitioned once up front, every round's job runs
// one map task per partition (each node's self-forwarded state takes
// the identity route; only proposals to neighbors go through the full
// shuffle), and the surviving states flow into the next round in place
// via MapValues — no flat rebuild, no re-hashing between rounds.
func GreedyMR(ctx context.Context, g *graph.Bipartite, opts GreedyMROptions) (*Result, error) {
	driver := mapreduce.NewDriver(opts.MR)
	driver.MaxRounds = opts.MaxRounds
	if driver.MaxRounds == 0 {
		driver.MaxRounds = 4*g.NumEdges() + 16
	}

	state := mapreduce.PartitionDataset(nodeRecords(g), driver.Partitions())
	var matched []int32 // cumulative, kept sorted by edge id
	var trace []float64

	_, err := mapreduce.Loop(ctx, driver, state, func(
		ctx context.Context, round int, st *mapreduce.Dataset[graph.NodeID, nodeState],
	) (*mapreduce.Dataset[graph.NodeID, nodeState], error) {
		if opts.StopAfterRounds > 0 && round >= opts.StopAfterRounds {
			return nil, nil // any-time stop: the current solution is feasible
		}
		out, err := mapreduce.RunJobDS(ctx, driver, "greedymr-round", st,
			greedyMap, greedyReduce(g))
		if err != nil {
			return nil, fmt.Errorf("core: greedymr round %d: %w", driver.Rounds(), err)
		}
		// The round output is folded driver-side (matched edges, next
		// state), so a worker-resident output moves here first.
		if err := out.Materialize(); err != nil {
			return nil, fmt.Errorf("core: greedymr round %d: %w", driver.Rounds(), err)
		}
		var roundMatched []int32
		next := mapreduce.MapValues(out, func(v graph.NodeID, o greedyOut) (nodeState, bool) {
			roundMatched = append(roundMatched, o.matched...)
			if !o.alive {
				return nodeState{}, false
			}
			return o.state, true
		})
		// The job output is fully folded into next and roundMatched:
		// hand its partition buffers back so the following round's
		// reduce emits into this round's memory.
		out.Recycle()
		// Keep the cumulative matched set sorted by edge id and sum it
		// in that order — the same order NewMatching uses — so the
		// final trace entry equals Matching.Value exactly
		// (floating-point addition is order-sensitive) regardless of
		// job output order.
		slices.Sort(roundMatched)
		matched = mergeSortedInt32(matched, roundMatched)
		trace = append(trace, matchedValue(g, matched))
		return next, nil
	})
	if err != nil {
		return nil, err
	}

	res := &Result{
		Matching:   NewMatching(g, matched),
		Rounds:     driver.Rounds(),
		Phases:     driver.Rounds(),
		Shuffle:    driver.Total(),
		RoundStats: driver.Trace(),
		ValueTrace: trace,
	}
	return res, nil
}

// greedyMsg is the intermediate value of a GreedyMR round: either a
// node's own state forwarded to itself (by value — a pointer here would
// cost one heap allocation per live node per round), or a proposal flag
// sent to the other endpoint of an edge.
type greedyMsg struct {
	state    nodeState // the node's own state, valid when self is set
	edge     int32
	proposed bool
	self     bool
}

// greedyOut is the output value of a GreedyMR round: the node's next
// state (alive reports whether the node stays in the computation) plus
// the matched edges reported by their item-side endpoint.
type greedyOut struct {
	state   nodeState
	matched []int32
	alive   bool
}

// greedyScratch is the per-task scratch of the GreedyMR hot loop: the
// index buffer of topByWeight and the reducer's edge-mark buffer. Map
// and reduce tasks borrow one per call through greedyScratchPool, so
// the steady-state round performs no per-node or per-key allocation.
type greedyScratch struct {
	idx   []int32
	marks []int32
}

var greedyScratchPool = sync.Pool{New: func() any { return new(greedyScratch) }}

// greedyMap implements the map phase of Algorithm 3: node v proposes its
// top-b(v) incident edges. Proposal membership is tested against the
// sorted adjacency indexes chosen by topByWeight — no per-node set
// allocation on this hot path.
func greedyMap(v graph.NodeID, st nodeState, out mapreduce.Emitter[graph.NodeID, greedyMsg]) error {
	out.Emit(v, greedyMsg{state: st, self: true})
	sc := greedyScratchPool.Get().(*greedyScratch)
	chosen := topByWeight(st.Adj, st.B, sc.idx)
	slices.Sort(chosen)
	for i, h := range st.Adj {
		out.Emit(h.Other, greedyMsg{edge: h.ID, proposed: sortedContains(chosen, int32(i))})
	}
	sc.idx = chosen
	greedyScratchPool.Put(sc)
	return nil
}

// edgeMark packs one neighbor message into an int32 for the reducer's
// sorted-slice intersection: the edge id shifted left once, with the
// proposal bit in-band in the low bit. The mapping is injective for all
// valid edge ids (only the sign bit is lost to the shift), and the
// marks' numeric order is irrelevant — they are only searched.
func edgeMark(edge int32, proposed bool) int32 {
	m := edge << 1
	if proposed {
		m |= 1
	}
	return m
}

// greedyReduce implements the reduce phase of Algorithm 3: node u
// intersects its own proposals with its neighbors' and updates its state.
// Edges for which no message arrived have a dead neighbor and are
// dropped. The proposal set of u is recomputed here with the same
// deterministic rule the mapper used, so both endpoints of an edge reach
// the same verdict.
//
// The intersection runs over one sorted slice of in-band edge marks
// instead of the two per-node map[int32]bool sets a naive translation
// would allocate — this reduce is the hot loop of every GreedyMR round
// (BenchmarkGreedyMRSingleRound), and the maps dominated its
// allocation profile. The mark and index buffers come from the shared
// scratch pool, and the surviving adjacency list is compacted in place
// into the node's own array (the reduce owns it: the previous round's
// holders are dead by the time this round's reduce runs, and writes
// trail reads in the compaction), so a steady-state round allocates
// nothing per key.
func greedyReduce(g *graph.Bipartite) mapreduce.ReduceFunc[graph.NodeID, greedyMsg, graph.NodeID, greedyOut] {
	return func(u graph.NodeID, msgs []greedyMsg, out mapreduce.Emitter[graph.NodeID, greedyOut]) error {
		var self *nodeState
		sc := greedyScratchPool.Get().(*greedyScratch)
		defer greedyScratchPool.Put(sc)
		marks := sc.marks[:0]
		for i := range msgs {
			m := &msgs[i]
			if m.self {
				self = &m.state
				continue
			}
			marks = append(marks, edgeMark(m.edge, m.proposed))
		}
		sc.marks = marks
		if self == nil {
			// The node died in an earlier round; stray proposals from
			// neighbors that have not yet noticed are ignored.
			return nil
		}
		slices.Sort(marks)
		mine := topByWeight(self.Adj, self.B, sc.idx)
		sc.idx = mine
		slices.Sort(mine)
		var res greedyOut
		adj := self.Adj
		next := nodeState{B: self.B, Adj: adj[:0]}
		for i, h := range adj {
			proposed := sortedContains(marks, edgeMark(h.ID, true))
			seen := proposed || sortedContains(marks, edgeMark(h.ID, false))
			switch {
			case !seen:
				// Neighbor is gone: drop the edge.
			case proposed && sortedContains(mine, int32(i)):
				// Both endpoints proposed: matched.
				next.B--
				if g.SideOf(u) == graph.ItemSide {
					res.matched = append(res.matched, h.ID)
				}
			default:
				next.Adj = append(next.Adj, h)
			}
		}
		if next.B > 0 && len(next.Adj) > 0 {
			res.state = next
			res.alive = true
		}
		if res.alive || len(res.matched) > 0 {
			out.Emit(u, res)
		}
		return nil
	}
}

// matchedValue sums the weights of the matched edges, which the caller
// keeps in ascending edge-id order, mirroring NewMatching's
// accumulation order so the two agree bit-for-bit.
func matchedValue(g *graph.Bipartite, sorted []int32) float64 {
	value := 0.0
	for _, ei := range sorted {
		value += g.Edge(int(ei)).Weight
	}
	return value
}

// mergeSortedInt32 merges two ascending slices into a fresh ascending
// slice; per round this is O(matched + new) instead of re-sorting the
// whole cumulative set.
func mergeSortedInt32(a, b []int32) []int32 {
	if len(b) == 0 {
		return a
	}
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}
