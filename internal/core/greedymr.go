package core

import (
	"context"
	"fmt"

	"repro/internal/graph"
	"repro/internal/mapreduce"
)

// GreedyMROptions configures GreedyMR.
type GreedyMROptions struct {
	// MR is the MapReduce configuration for every round.
	MR mapreduce.Config
	// MaxRounds aborts the computation when exceeded (a safety net:
	// GreedyMR always terminates, but its round count can be linear in
	// the worst case). Zero means 4·|E|+16, which is always enough
	// because every round matches or drops at least one edge.
	MaxRounds int
	// StopAfterRounds, when positive, stops the algorithm early and
	// returns the current (feasible) solution: the any-time property
	// of Section 5.4.
	StopAfterRounds int
}

// GreedyMR computes a b-matching with the MapReduce adaptation of the
// greedy algorithm (paper Section 5.4, Algorithm 3).
//
// Each MapReduce round: in the map phase every node v proposes its
// (residual) b(v) heaviest incident edges to its neighbors; in the reduce
// phase every node intersects its own proposals with those of its
// neighbors, includes the intersection in the matching, decrements its
// capacity, and drops out when saturated. The solution after every round
// is feasible, so the algorithm can be stopped at any time.
//
// The returned Result has one ValueTrace entry per round (Figure 5 plots
// exactly this trace) and Rounds equal to the number of MapReduce jobs,
// one per greedy iteration.
func GreedyMR(ctx context.Context, g *graph.Bipartite, opts GreedyMROptions) (*Result, error) {
	driver := mapreduce.NewDriver(opts.MR)
	driver.MaxRounds = opts.MaxRounds
	if driver.MaxRounds == 0 {
		driver.MaxRounds = 4*g.NumEdges() + 16
	}

	records := nodeRecords(g)
	var matched []int32
	var trace []float64
	value := 0.0

	for len(records) > 0 {
		if opts.StopAfterRounds > 0 && driver.Rounds() >= opts.StopAfterRounds {
			break
		}
		out, err := mapreduce.RunJob(ctx, driver, "greedymr-round", records,
			greedyMap, greedyReduce(g))
		if err != nil {
			return nil, fmt.Errorf("core: greedymr round %d: %w", driver.Rounds(), err)
		}
		records = records[:0]
		for _, p := range out {
			if p.Value.state != nil {
				records = append(records, mapreduce.P(p.Key, *p.Value.state))
			}
			for _, ei := range p.Value.matched {
				matched = append(matched, ei)
				value += g.Edge(int(ei)).Weight
			}
		}
		trace = append(trace, value)
	}

	res := &Result{
		Matching:   NewMatching(g, matched),
		Rounds:     driver.Rounds(),
		Phases:     driver.Rounds(),
		Shuffle:    driver.Total(),
		RoundStats: driver.Trace(),
		ValueTrace: trace,
	}
	return res, nil
}

// greedyMsg is the intermediate value of a GreedyMR round: either a
// node's own state forwarded to itself, or a proposal flag sent to the
// other endpoint of an edge.
type greedyMsg struct {
	self     *nodeState
	edge     int32
	proposed bool
}

// greedyOut is the output value of a GreedyMR round: the node's next
// state (nil when the node drops out) plus the matched edges reported by
// their item-side endpoint.
type greedyOut struct {
	state   *nodeState
	matched []int32
}

// greedyMap implements the map phase of Algorithm 3: node v proposes its
// top-b(v) incident edges.
func greedyMap(v graph.NodeID, st nodeState, out mapreduce.Emitter[graph.NodeID, greedyMsg]) error {
	stCopy := st
	out.Emit(v, greedyMsg{self: &stCopy})
	proposals := edgeSet(st.Adj, topByWeight(st.Adj, st.B))
	for _, h := range st.Adj {
		out.Emit(h.Other, greedyMsg{edge: h.ID, proposed: proposals[h.ID]})
	}
	return nil
}

// greedyReduce implements the reduce phase of Algorithm 3: node u
// intersects its own proposals with its neighbors' and updates its state.
// Edges for which no message arrived have a dead neighbor and are
// dropped. The proposal set of u is recomputed here with the same
// deterministic rule the mapper used, so both endpoints of an edge reach
// the same verdict.
func greedyReduce(g *graph.Bipartite) mapreduce.ReduceFunc[graph.NodeID, greedyMsg, graph.NodeID, greedyOut] {
	return func(u graph.NodeID, msgs []greedyMsg, out mapreduce.Emitter[graph.NodeID, greedyOut]) error {
		var self *nodeState
		incoming := make(map[int32]bool) // edge id -> proposed by other side
		seen := make(map[int32]bool)
		for _, m := range msgs {
			if m.self != nil {
				self = m.self
				continue
			}
			seen[m.edge] = true
			if m.proposed {
				incoming[m.edge] = true
			}
		}
		if self == nil {
			// The node died in an earlier round; stray proposals from
			// neighbors that have not yet noticed are ignored.
			return nil
		}
		mine := edgeSet(self.Adj, topByWeight(self.Adj, self.B))
		var res greedyOut
		next := nodeState{B: self.B}
		for _, h := range self.Adj {
			switch {
			case !seen[h.ID]:
				// Neighbor is gone: drop the edge.
			case incoming[h.ID] && mine[h.ID]:
				// Both endpoints proposed: matched.
				next.B--
				if g.SideOf(u) == graph.ItemSide {
					res.matched = append(res.matched, h.ID)
				}
			default:
				next.Adj = append(next.Adj, h)
			}
		}
		if next.B > 0 && len(next.Adj) > 0 {
			res.state = &next
		}
		if res.state != nil || len(res.matched) > 0 {
			out.Emit(u, res)
		}
		return nil
	}
}
