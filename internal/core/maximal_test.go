package core

import (
	"context"
	"testing"

	"repro/internal/graph"
	"repro/internal/mapreduce"
)

// runMaximal drives the maximal-matching subroutine directly.
func runMaximal(t *testing.T, g *graph.Bipartite, strategy MarkingStrategy, seed int64) *Matching {
	t.Helper()
	driver := mapreduce.NewDriver(testMR)
	driver.MaxRounds = 64*g.NumEdges() + 256
	matched, err := maximalBMatching(context.Background(), driver,
		mapreduce.PartitionDataset(nodeRecords(g), driver.Partitions()),
		maximalConfig{strategy: strategy, seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return NewMatching(g, matched)
}

func TestMaximalMatchingFeasible(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		g := graph.RandomBipartite(graph.RandomConfig{
			NumItems: 10, NumConsumers: 8, EdgeProb: 0.5,
			MaxWeight: 3, MaxCapacity: 3, Seed: seed,
		})
		m := runMaximal(t, g, MarkRandom, seed)
		if err := m.Validate(1); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

func TestMaximalMatchingIsMaximal(t *testing.T) {
	// Garrido et al.'s guarantee: no edge can be added without
	// violating a capacity. This is the property StackMR depends on.
	for seed := int64(0); seed < 15; seed++ {
		g := graph.RandomBipartite(graph.RandomConfig{
			NumItems: 9, NumConsumers: 9, EdgeProb: 0.45,
			MaxWeight: 2, MaxCapacity: 2, Seed: seed + 50,
		})
		m := runMaximal(t, g, MarkRandom, seed)
		deg := m.Degrees()
		for i := 0; i < g.NumEdges(); i++ {
			if m.Contains(int32(i)) {
				continue
			}
			e := g.Edge(i)
			if deg[e.Item] < g.IntCapacity(e.Item) && deg[e.Consumer] < g.IntCapacity(e.Consumer) {
				t.Errorf("seed %d: edge %d addable: not maximal", seed, i)
			}
		}
	}
}

func TestMaximalMatchingGreedyStrategy(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := graph.RandomBipartite(graph.RandomConfig{
			NumItems: 8, NumConsumers: 8, EdgeProb: 0.5,
			MaxWeight: 4, MaxCapacity: 2, Seed: seed + 200,
		})
		m := runMaximal(t, g, MarkHeaviest, seed)
		if err := m.Validate(1); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

func TestMaximalMatchingDeterministicUnderSeed(t *testing.T) {
	g := graph.RandomBipartite(graph.RandomConfig{
		NumItems: 10, NumConsumers: 10, EdgeProb: 0.4,
		MaxWeight: 2, MaxCapacity: 2, Seed: 77,
	})
	a := runMaximal(t, g, MarkRandom, 13)
	b := runMaximal(t, g, MarkRandom, 13)
	ia, ib := a.EdgeIndexes(), b.EdgeIndexes()
	if len(ia) != len(ib) {
		t.Fatal("same seed produced different sizes")
	}
	for i := range ia {
		if ia[i] != ib[i] {
			t.Fatal("same seed produced different matchings")
		}
	}
}

func TestMaximalMatchingUnitCapacities(t *testing.T) {
	// With all capacities 1 the result is a maximal simple matching:
	// matched edges are pairwise disjoint.
	g := graph.RandomBipartite(graph.RandomConfig{
		NumItems: 12, NumConsumers: 12, EdgeProb: 0.3,
		MaxWeight: 1, MaxCapacity: 1, Seed: 5,
	})
	m := runMaximal(t, g, MarkRandom, 5)
	seen := make(map[graph.NodeID]bool)
	for _, e := range m.Edges() {
		if seen[e.Item] || seen[e.Consumer] {
			t.Fatalf("node repeated in unit-capacity matching")
		}
		seen[e.Item] = true
		seen[e.Consumer] = true
	}
}

func TestMaximalMatchingCompleteBipartite(t *testing.T) {
	// On K_{n,n} with capacity 1 per node, a maximal matching is
	// perfect.
	const n = 6
	g := graph.NewBipartite(n, n)
	g.SetAllCapacities(graph.ItemSide, 1)
	g.SetAllCapacities(graph.ConsumerSide, 1)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			g.AddEdge(g.ItemID(i), g.ConsumerID(j), 1+float64(i*n+j)/100)
		}
	}
	m := runMaximal(t, g, MarkRandom, 3)
	if m.Size() != n {
		t.Errorf("matching size %d on K_{%d,%d}, want perfect %d", m.Size(), n, n, n)
	}
}

func TestMaximalMatchingSingleEdge(t *testing.T) {
	g := graph.NewBipartite(1, 1)
	g.SetCapacity(0, 1)
	g.SetCapacity(1, 1)
	g.AddEdge(0, 1, 1)
	m := runMaximal(t, g, MarkRandom, 1)
	if m.Size() != 1 {
		t.Errorf("single edge not matched: size %d", m.Size())
	}
}

func TestMaximalMatchingStar(t *testing.T) {
	// A star with center capacity k matches exactly k leaves.
	const leaves = 10
	const k = 3
	g := graph.NewBipartite(1, leaves)
	g.SetCapacity(g.ItemID(0), k)
	for j := 0; j < leaves; j++ {
		g.SetCapacity(g.ConsumerID(j), 1)
		g.AddEdge(g.ItemID(0), g.ConsumerID(j), 1)
	}
	m := runMaximal(t, g, MarkRandom, 2)
	if m.Size() != k {
		t.Errorf("star matched %d edges, want %d", m.Size(), k)
	}
}

func TestPickRandomProperties(t *testing.T) {
	rng := nodeRand(1, 2, 3)
	for n := 0; n < 10; n++ {
		for k := 0; k <= n+2; k++ {
			got := pickRandom(n, k, rng)
			want := k
			if want > n {
				want = n
			}
			if len(got) != want {
				t.Fatalf("pickRandom(%d,%d) returned %d values", n, k, len(got))
			}
			seen := make(map[int]bool)
			for _, i := range got {
				if i < 0 || i >= n || seen[i] {
					t.Fatalf("pickRandom(%d,%d) invalid index %d", n, k, i)
				}
				seen[i] = true
			}
		}
	}
}

func TestPickFromSubset(t *testing.T) {
	rng := nodeRand(9, 9, 9)
	cands := []int{3, 7, 11, 15}
	got := pickFrom(cands, 2, rng)
	if len(got) != 2 {
		t.Fatalf("pickFrom returned %d", len(got))
	}
	valid := map[int]bool{3: true, 7: true, 11: true, 15: true}
	for _, v := range got {
		if !valid[v] {
			t.Errorf("pickFrom invented %d", v)
		}
	}
	if got2 := pickFrom(cands, 10, rng); len(got2) != 4 {
		t.Errorf("pickFrom over-ask returned %d", len(got2))
	}
}

func TestMarkingStrategyString(t *testing.T) {
	if MarkRandom.String() != "random" || MarkHeaviest.String() != "heaviest" {
		t.Error("MarkingStrategy.String wrong")
	}
}
