package core

// Property-based tests over random instances: the cross-algorithm
// invariants that Section 5 proves, checked with testing/quick.

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/mapreduce"
)

// genGraph derives a small random instance from arbitrary quick inputs.
func genGraph(seed int64, nItems, nCons, prob uint8) *graph.Bipartite {
	return graph.RandomBipartite(graph.RandomConfig{
		NumItems:     int(nItems)%10 + 2,
		NumConsumers: int(nCons)%8 + 2,
		EdgeProb:     0.2 + float64(prob%60)/100,
		MaxWeight:    5,
		MaxCapacity:  3,
		Seed:         seed,
	})
}

func TestPropertyGreedyMREqualsGreedy(t *testing.T) {
	// With almost-surely-distinct float weights, the parallel
	// locally-dominant process computes exactly the sequential greedy
	// matching (the b-Suitor equivalence).
	ctx := context.Background()
	prop := func(seed int64, nItems, nCons, prob uint8) bool {
		g := genGraph(seed, nItems, nCons, prob)
		res, err := GreedyMR(ctx, g, GreedyMROptions{MR: testMR})
		if err != nil {
			return false
		}
		return math.Abs(res.Matching.Value()-Greedy(g).Matching.Value()) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyAllAlgorithmsRespectSlack(t *testing.T) {
	ctx := context.Background()
	prop := func(seed int64, nItems, nCons, prob uint8) bool {
		g := genGraph(seed, nItems, nCons, prob)
		gm, err := GreedyMR(ctx, g, GreedyMROptions{MR: testMR})
		if err != nil || gm.Matching.Validate(1) != nil {
			return false
		}
		sm, err := StackMR(ctx, g, StackOptions{MR: testMR, Eps: 1, Seed: seed})
		if err != nil || sm.Matching.Validate(2) != nil {
			return false
		}
		ss, err := StackMRStrict(ctx, g, StackOptions{MR: testMR, Eps: 1, Seed: seed})
		if err != nil || ss.Matching.Validate(1) != nil {
			return false
		}
		return StackSequential(g, 1).Matching.Validate(1) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyMatchingValueEqualsSumOfWeights(t *testing.T) {
	prop := func(seed int64, nItems, nCons, prob uint8) bool {
		g := genGraph(seed, nItems, nCons, prob)
		m := Greedy(g).Matching
		var sum float64
		for _, e := range m.Edges() {
			sum += e.Weight
		}
		return math.Abs(sum-m.Value()) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropertyStackDualsCoverStackedEdges(t *testing.T) {
	// Primal-dual invariant: after the push phase every edge was either
	// stacked (its duals were raised to cover it) or weakly covered.
	// Observable consequence: the stack algorithms never return an
	// empty matching on a graph that has at least one edge between
	// positive-capacity nodes.
	ctx := context.Background()
	prop := func(seed int64, nItems, nCons uint8) bool {
		g := genGraph(seed, nItems, nCons, 50)
		hasLiveEdge := false
		for _, e := range g.Edges() {
			if g.IntCapacity(e.Item) > 0 && g.IntCapacity(e.Consumer) > 0 {
				hasLiveEdge = true
				break
			}
		}
		res, err := StackMR(ctx, g, StackOptions{MR: testMR, Eps: 1, Seed: seed})
		if err != nil {
			return false
		}
		if hasLiveEdge && res.Matching.Size() == 0 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyResultsUnchangedUnderInjectedFailures(t *testing.T) {
	// The fault-tolerance contract end to end: running the full
	// GreedyMR computation with 30% simulated task failures must give
	// the identical matching (tasks are pure, re-execution transparent).
	ctx := context.Background()
	prop := func(seed int64, nItems, nCons, prob uint8) bool {
		g := genGraph(seed, nItems, nCons, prob)
		clean, err := GreedyMR(ctx, g, GreedyMROptions{MR: testMR})
		if err != nil {
			return false
		}
		faultyMR := mapreduce.Config{Mappers: 3, Reducers: 3,
			FailureRate: 0.3, FailureSeed: seed, MaxAttempts: 16}
		faulty, err := GreedyMR(ctx, g, GreedyMROptions{MR: faultyMR})
		if err != nil {
			return false
		}
		a, b := clean.Matching.EdgeIndexes(), faulty.Matching.EdgeIndexes()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestStackMRUnderInjectedFailures(t *testing.T) {
	// The randomized algorithm is seeded independently of task
	// scheduling, so injected failures must not change its output
	// either.
	ctx := context.Background()
	g := graph.RandomBipartite(graph.RandomConfig{
		NumItems: 12, NumConsumers: 10, EdgeProb: 0.4,
		MaxWeight: 4, MaxCapacity: 2, Seed: 17,
	})
	clean, err := StackMR(ctx, g, StackOptions{MR: testMR, Eps: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := StackMR(ctx, g, StackOptions{
		MR:   mapreduce.Config{Mappers: 2, Reducers: 2, FailureRate: 0.25, FailureSeed: 4, MaxAttempts: 16},
		Eps:  1,
		Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if clean.Matching.Value() != faulty.Matching.Value() {
		t.Errorf("value changed under failures: %v vs %v",
			clean.Matching.Value(), faulty.Matching.Value())
	}
	if faulty.Shuffle.MapTaskRetries+faulty.Shuffle.ReduceTaskRetries == 0 {
		t.Error("no retries recorded at 25% failure rate")
	}
}
