package core

import (
	"context"
	"testing"

	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/mapreduce"
)

var testMR = mapreduce.Config{Mappers: 2, Reducers: 2}

func TestGreedyMRFeasibleAndMaximal(t *testing.T) {
	ctx := context.Background()
	for seed := int64(0); seed < 20; seed++ {
		g := graph.RandomBipartite(graph.RandomConfig{
			NumItems: 12, NumConsumers: 10, EdgeProb: 0.4,
			MaxWeight: 3, MaxCapacity: 3, Seed: seed,
		})
		res, err := GreedyMR(ctx, g, GreedyMROptions{MR: testMR})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := res.Matching.Validate(1); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Maximality.
		deg := res.Matching.Degrees()
		for i := 0; i < g.NumEdges(); i++ {
			if res.Matching.Contains(int32(i)) {
				continue
			}
			e := g.Edge(i)
			if deg[e.Item] < g.IntCapacity(e.Item) && deg[e.Consumer] < g.IntCapacity(e.Consumer) {
				t.Errorf("seed %d: edge %d addable, matching not maximal", seed, i)
			}
		}
	}
}

func TestGreedyMRHalfApproximation(t *testing.T) {
	ctx := context.Background()
	for seed := int64(100); seed < 130; seed++ {
		g := graph.RandomBipartite(graph.RandomConfig{
			NumItems: 6, NumConsumers: 6, EdgeProb: 0.5,
			MaxWeight: 5, MaxCapacity: 2, Seed: seed,
		})
		res, err := GreedyMR(ctx, g, GreedyMROptions{MR: testMR})
		if err != nil {
			t.Fatal(err)
		}
		_, opt, err := flow.MaxWeightBMatching(g)
		if err != nil {
			t.Fatal(err)
		}
		if res.Matching.Value() < opt/2-1e-9 {
			t.Errorf("seed %d: value %v < OPT/2 (%v)", seed, res.Matching.Value(), opt/2)
		}
	}
}

func TestGreedyMRValueTraceMonotone(t *testing.T) {
	ctx := context.Background()
	g := graph.RandomBipartite(graph.RandomConfig{
		NumItems: 20, NumConsumers: 15, EdgeProb: 0.3,
		MaxWeight: 2, MaxCapacity: 3, Seed: 9,
	})
	res, err := GreedyMR(ctx, g, GreedyMROptions{MR: testMR})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ValueTrace) != res.Rounds {
		t.Errorf("trace length %d != rounds %d", len(res.ValueTrace), res.Rounds)
	}
	prev := 0.0
	for i, v := range res.ValueTrace {
		if v < prev-1e-12 {
			t.Errorf("trace decreased at %d: %v -> %v", i, prev, v)
		}
		prev = v
	}
	if prev != res.Matching.Value() {
		t.Errorf("final trace %v != matching value %v", prev, res.Matching.Value())
	}
}

func TestGreedyMRPathWorstCaseLinearRounds(t *testing.T) {
	// Section 5.4: on an increasing-weight path GreedyMR needs a linear
	// number of rounds (each round matches only the heaviest remaining
	// edge at the path's end).
	ctx := context.Background()
	const k = 24
	g := graph.PathGraph(k)
	res, err := GreedyMR(ctx, g, GreedyMROptions{MR: testMR})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds < (k-1)/2-1 {
		t.Errorf("rounds = %d on %d-edge path, expected roughly linear (>= %d)",
			res.Rounds, k-1, (k-1)/2-1)
	}
	if err := res.Matching.Validate(1); err != nil {
		t.Error(err)
	}
}

func TestGreedyMRAnyTimeStopping(t *testing.T) {
	// Stopping early must return a feasible prefix of the computation
	// whose value matches the trace at that round.
	ctx := context.Background()
	g := graph.PathGraph(20)
	full, err := GreedyMR(ctx, g, GreedyMROptions{MR: testMR})
	if err != nil {
		t.Fatal(err)
	}
	for _, stop := range []int{1, 2, full.Rounds / 2} {
		part, err := GreedyMR(ctx, g, GreedyMROptions{MR: testMR, StopAfterRounds: stop})
		if err != nil {
			t.Fatal(err)
		}
		if err := part.Matching.Validate(1); err != nil {
			t.Fatalf("stop=%d: infeasible: %v", stop, err)
		}
		if part.Rounds != stop {
			t.Errorf("stop=%d: ran %d rounds", stop, part.Rounds)
		}
		if want := full.ValueTrace[stop-1]; part.Matching.Value() != want {
			t.Errorf("stop=%d: value %v, want trace value %v", stop, part.Matching.Value(), want)
		}
	}
}

func TestGreedyMRRoundLimit(t *testing.T) {
	ctx := context.Background()
	g := graph.PathGraph(30)
	_, err := GreedyMR(ctx, g, GreedyMROptions{MR: testMR, MaxRounds: 2})
	if err == nil {
		t.Error("expected round-limit error")
	}
}

func TestGreedyMREmptyGraph(t *testing.T) {
	ctx := context.Background()
	g := graph.NewBipartite(4, 4)
	g.SetAllCapacities(graph.ItemSide, 2)
	g.SetAllCapacities(graph.ConsumerSide, 2)
	res, err := GreedyMR(ctx, g, GreedyMROptions{MR: testMR})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matching.Size() != 0 || res.Rounds != 0 {
		t.Errorf("empty graph: size=%d rounds=%d", res.Matching.Size(), res.Rounds)
	}
}

func TestGreedyMRZeroCapacityNodesIgnored(t *testing.T) {
	ctx := context.Background()
	g := graph.NewBipartite(2, 2)
	g.SetCapacity(g.ItemID(0), 0) // excluded
	g.SetCapacity(g.ItemID(1), 1)
	g.SetCapacity(g.ConsumerID(0), 1)
	g.SetCapacity(g.ConsumerID(1), 0) // excluded
	g.AddEdge(g.ItemID(0), g.ConsumerID(0), 9)
	g.AddEdge(g.ItemID(1), g.ConsumerID(0), 1)
	g.AddEdge(g.ItemID(1), g.ConsumerID(1), 5)
	res, err := GreedyMR(ctx, g, GreedyMROptions{MR: testMR})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matching.Size() != 1 || !res.Matching.Contains(1) {
		t.Errorf("matched %v, want only edge 1", res.Matching.EdgeIndexes())
	}
}

func TestGreedyMRShuffleAccounting(t *testing.T) {
	ctx := context.Background()
	g := graph.RandomBipartite(graph.RandomConfig{
		NumItems: 10, NumConsumers: 10, EdgeProb: 0.4,
		MaxWeight: 1, MaxCapacity: 2, Seed: 1,
	})
	res, err := GreedyMR(ctx, g, GreedyMROptions{MR: testMR})
	if err != nil {
		t.Fatal(err)
	}
	// Per round the job shuffles one self record per live node plus two
	// messages per live edge; totals must be positive and consistent.
	if res.Shuffle.ShuffleRecords <= 0 || res.Shuffle.MapInputRecords <= 0 {
		t.Errorf("shuffle stats empty: %+v", res.Shuffle)
	}
}
