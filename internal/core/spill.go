package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/graph"
)

// The spilling shuffle backend of internal/mapreduce serializes
// intermediate values through encoding.BinaryMarshaler (see
// mapreduce/spillcodec.go for the resolution order). This file gives the
// matching algorithms' message types a compact binary form so that
// GreedyMR, StackMR, StackGreedyMR and StackMRStrict run unchanged on
// either shuffle backend: a message is a tag byte plus either the node's
// own state (adjacency list) or a per-edge payload.
//
// The encoding is explicit about pointer presence (tag bits), so a
// round trip preserves the nil-ness that the reducers branch on — the
// reason these types cannot rely on a reflective fallback.

const (
	tagSelf  = 1 << 0 // message carries the node's own state
	tagFlagA = 1 << 1 // per-message boolean (proposed / flag / alive)
)

// --- shared pieces -----------------------------------------------------

func appendHalf(buf []byte, h half) []byte {
	buf = binary.AppendVarint(buf, int64(h.ID))
	buf = binary.AppendVarint(buf, int64(h.Other))
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(h.W))
}

func appendNodeState(buf []byte, st *nodeState) []byte {
	buf = binary.AppendVarint(buf, int64(st.B))
	buf = binary.AppendUvarint(buf, uint64(len(st.Adj)))
	for _, h := range st.Adj {
		buf = appendHalf(buf, h)
	}
	return buf
}

func appendMMNode(buf []byte, st *mmNode) []byte {
	buf = binary.AppendVarint(buf, int64(st.B))
	buf = binary.AppendUvarint(buf, uint64(len(st.Adj)))
	for _, e := range st.Adj {
		buf = appendHalf(buf, e.half)
		var flags byte
		if e.markedBySelf {
			flags |= 1 << 0
		}
		if e.markedByOther {
			flags |= 1 << 1
		}
		if e.selBySelf {
			flags |= 1 << 2
		}
		if e.selByOther {
			flags |= 1 << 3
		}
		if e.inF {
			flags |= 1 << 4
		}
		buf = append(buf, flags)
	}
	return buf
}

// spillReader decodes the buffers produced above; the first malformed
// field poisons the reader and the final err() call reports it.
type spillReader struct {
	data []byte
	bad  bool
}

func (r *spillReader) varint() int64 {
	x, n := binary.Varint(r.data)
	if n <= 0 {
		r.bad = true
		return 0
	}
	r.data = r.data[n:]
	return x
}

func (r *spillReader) uvarint() uint64 {
	x, n := binary.Uvarint(r.data)
	if n <= 0 {
		r.bad = true
		return 0
	}
	r.data = r.data[n:]
	return x
}

func (r *spillReader) float() float64 {
	if len(r.data) < 8 {
		r.bad = true
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.data))
	r.data = r.data[8:]
	return v
}

func (r *spillReader) byte() byte {
	if len(r.data) < 1 {
		r.bad = true
		return 0
	}
	b := r.data[0]
	r.data = r.data[1:]
	return b
}

func (r *spillReader) half() half {
	return half{
		ID:    int32(r.varint()),
		Other: graph.NodeID(r.varint()),
		W:     r.float(),
	}
}

func (r *spillReader) nodeState() *nodeState {
	st := &nodeState{B: int(r.varint())}
	n := r.uvarint()
	if r.bad || n > uint64(len(r.data)) { // each half needs >= 10 bytes
		r.bad = true
		return st
	}
	st.Adj = make([]half, 0, n)
	for i := uint64(0); i < n && !r.bad; i++ {
		st.Adj = append(st.Adj, r.half())
	}
	return st
}

func (r *spillReader) mmNode() *mmNode {
	st := &mmNode{B: int(r.varint())}
	n := r.uvarint()
	if r.bad || n > uint64(len(r.data)) {
		r.bad = true
		return st
	}
	st.Adj = make([]mmEdge, 0, n)
	for i := uint64(0); i < n && !r.bad; i++ {
		e := mmEdge{half: r.half()}
		flags := r.byte()
		e.markedBySelf = flags&(1<<0) != 0
		e.markedByOther = flags&(1<<1) != 0
		e.selBySelf = flags&(1<<2) != 0
		e.selByOther = flags&(1<<3) != 0
		e.inF = flags&(1<<4) != 0
		st.Adj = append(st.Adj, e)
	}
	return st
}

func (r *spillReader) err(what string) error {
	if r.bad {
		return fmt.Errorf("core: corrupt spilled %s", what)
	}
	if len(r.data) != 0 {
		return fmt.Errorf("core: %d trailing bytes after spilled %s", len(r.data), what)
	}
	return nil
}

// --- greedyMsg ---------------------------------------------------------

// MarshalBinary implements encoding.BinaryMarshaler for the spilling
// shuffle backend.
func (m greedyMsg) MarshalBinary() ([]byte, error) {
	var tag byte
	if m.self {
		tag |= tagSelf
	}
	if m.proposed {
		tag |= tagFlagA
	}
	buf := []byte{tag}
	if m.self {
		return appendNodeState(buf, &m.state), nil
	}
	return binary.AppendVarint(buf, int64(m.edge)), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *greedyMsg) UnmarshalBinary(data []byte) error {
	r := &spillReader{data: data}
	tag := r.byte()
	*m = greedyMsg{proposed: tag&tagFlagA != 0, self: tag&tagSelf != 0}
	if m.self {
		m.state = *r.nodeState()
	} else {
		m.edge = int32(r.varint())
	}
	return r.err("greedyMsg")
}

// --- mmMsg -------------------------------------------------------------

// MarshalBinary implements encoding.BinaryMarshaler for the spilling
// shuffle backend.
func (m mmMsg) MarshalBinary() ([]byte, error) {
	var tag byte
	if m.self != nil {
		tag |= tagSelf
	}
	if m.flag {
		tag |= tagFlagA
	}
	buf := []byte{tag}
	if m.self != nil {
		return appendMMNode(buf, m.self), nil
	}
	return binary.AppendVarint(buf, int64(m.edge)), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *mmMsg) UnmarshalBinary(data []byte) error {
	r := &spillReader{data: data}
	tag := r.byte()
	*m = mmMsg{flag: tag&tagFlagA != 0}
	if tag&tagSelf != 0 {
		m.self = r.mmNode()
	} else {
		m.edge = int32(r.varint())
	}
	return r.err("mmMsg")
}

// --- cleanupMsg --------------------------------------------------------

// MarshalBinary implements encoding.BinaryMarshaler for the spilling
// shuffle backend.
func (m cleanupMsg) MarshalBinary() ([]byte, error) {
	var tag byte
	if m.self != nil {
		tag |= tagSelf
	}
	if m.alive {
		tag |= tagFlagA
	}
	buf := []byte{tag}
	if m.self != nil {
		return appendMMNode(buf, m.self), nil
	}
	return binary.AppendVarint(buf, int64(m.edge)), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *cleanupMsg) UnmarshalBinary(data []byte) error {
	r := &spillReader{data: data}
	tag := r.byte()
	*m = cleanupMsg{alive: tag&tagFlagA != 0}
	if tag&tagSelf != 0 {
		m.self = r.mmNode()
	} else {
		m.edge = int32(r.varint())
	}
	return r.err("cleanupMsg")
}

// --- dualMsg / filterMsg -----------------------------------------------

// MarshalBinary implements encoding.BinaryMarshaler for the spilling
// shuffle backend.
func (m dualMsg) MarshalBinary() ([]byte, error) {
	return marshalEdgeValueMsg(m.self, m.edge, m.yOverB)
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *dualMsg) UnmarshalBinary(data []byte) error {
	self, edge, y, err := unmarshalEdgeValueMsg(data, "dualMsg")
	*m = dualMsg{self: self, edge: edge, yOverB: y}
	return err
}

// MarshalBinary implements encoding.BinaryMarshaler for the spilling
// shuffle backend.
func (m filterMsg) MarshalBinary() ([]byte, error) {
	return marshalEdgeValueMsg(m.self, m.edge, m.yOverB)
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *filterMsg) UnmarshalBinary(data []byte) error {
	self, edge, y, err := unmarshalEdgeValueMsg(data, "filterMsg")
	*m = filterMsg{self: self, edge: edge, yOverB: y}
	return err
}

// --- reduce-output types -----------------------------------------------
//
// The distributed runtime streams reduce output (and resident Dataset
// partitions) between processes, so the jobs' output value types need
// the same compact binary form the intermediate messages already have.
// The spilling backend never serializes these (it spills intermediates
// only); the codecs exist for the wire.

// MarshalBinary implements encoding.BinaryMarshaler.
func (s nodeState) MarshalBinary() ([]byte, error) {
	return appendNodeState(nil, &s), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (s *nodeState) UnmarshalBinary(data []byte) error {
	r := &spillReader{data: data}
	*s = *r.nodeState()
	return r.err("nodeState")
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (s mmNode) MarshalBinary() ([]byte, error) {
	return appendMMNode(nil, &s), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (s *mmNode) UnmarshalBinary(data []byte) error {
	r := &spillReader{data: data}
	*s = *r.mmNode()
	return r.err("mmNode")
}

func appendInt32s(buf []byte, xs []int32) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(xs)))
	for _, x := range xs {
		buf = binary.AppendVarint(buf, int64(x))
	}
	return buf
}

func (r *spillReader) int32s() []int32 {
	n := r.uvarint()
	if r.bad || n > uint64(len(r.data)) {
		r.bad = true
		return nil
	}
	if n == 0 {
		return nil
	}
	xs := make([]int32, 0, n)
	for i := uint64(0); i < n && !r.bad; i++ {
		xs = append(xs, int32(r.varint()))
	}
	return xs
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (o greedyOut) MarshalBinary() ([]byte, error) {
	var tag byte
	if o.alive {
		tag |= tagFlagA
	}
	buf := appendInt32s([]byte{tag}, o.matched)
	return appendNodeState(buf, &o.state), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (o *greedyOut) UnmarshalBinary(data []byte) error {
	r := &spillReader{data: data}
	tag := r.byte()
	*o = greedyOut{alive: tag&tagFlagA != 0}
	o.matched = r.int32s()
	o.state = *r.nodeState()
	return r.err("greedyOut")
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (o mmOut) MarshalBinary() ([]byte, error) {
	var tag byte
	if o.state != nil {
		tag |= tagSelf
	}
	buf := appendInt32s([]byte{tag}, o.matched)
	if o.state != nil {
		buf = appendMMNode(buf, o.state)
	}
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (o *mmOut) UnmarshalBinary(data []byte) error {
	r := &spillReader{data: data}
	tag := r.byte()
	*o = mmOut{matched: r.int32s()}
	if tag&tagSelf != 0 {
		o.state = r.mmNode()
	}
	return r.err("mmOut")
}

// marshalEdgeValueMsg encodes the shared shape of dualMsg and filterMsg:
// either the node's state, or (edge, yOverB).
func marshalEdgeValueMsg(self *nodeState, edge int32, yOverB float64) ([]byte, error) {
	if self != nil {
		return appendNodeState([]byte{tagSelf}, self), nil
	}
	buf := binary.AppendVarint([]byte{0}, int64(edge))
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(yOverB)), nil
}

func unmarshalEdgeValueMsg(data []byte, what string) (*nodeState, int32, float64, error) {
	r := &spillReader{data: data}
	if r.byte()&tagSelf != 0 {
		self := r.nodeState()
		return self, 0, 0, r.err(what)
	}
	edge := int32(r.varint())
	y := r.float()
	return nil, edge, y, r.err(what)
}
