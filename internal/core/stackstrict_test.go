package core

import (
	"context"
	"testing"

	"repro/internal/flow"
	"repro/internal/graph"
)

func TestStackMRStrictAlwaysFeasible(t *testing.T) {
	// Algorithm 1's whole point: no capacity violations, ever.
	ctx := context.Background()
	for _, eps := range []float64{0.25, 1} {
		for seed := int64(0); seed < 15; seed++ {
			g := graph.RandomBipartite(graph.RandomConfig{
				NumItems: 12, NumConsumers: 9, EdgeProb: 0.5,
				MaxWeight: 4, MaxCapacity: 3, Seed: seed,
			})
			res, err := StackMRStrict(ctx, g, stackOpts(eps, seed))
			if err != nil {
				t.Fatalf("eps=%v seed=%d: %v", eps, seed, err)
			}
			if err := res.Matching.Validate(1); err != nil {
				t.Errorf("eps=%v seed=%d: %v", eps, seed, err)
			}
			if res.Matching.Violation() != 0 {
				t.Errorf("eps=%v seed=%d: violation %v", eps, seed, res.Matching.Violation())
			}
		}
	}
}

func TestStackMRStrictQuality(t *testing.T) {
	// Same 1/(6+ε) flavour of guarantee as the relaxed variant.
	ctx := context.Background()
	const eps = 1.0
	for seed := int64(0); seed < 20; seed++ {
		g := graph.RandomBipartite(graph.RandomConfig{
			NumItems: 7, NumConsumers: 6, EdgeProb: 0.5,
			MaxWeight: 5, MaxCapacity: 2, Seed: seed + 500,
		})
		res, err := StackMRStrict(ctx, g, stackOpts(eps, seed))
		if err != nil {
			t.Fatal(err)
		}
		_, opt, err := flow.MaxWeightBMatching(g)
		if err != nil {
			t.Fatal(err)
		}
		if res.Matching.Value() < opt/(6+eps)-1e-9 {
			t.Errorf("seed %d: strict %v < OPT/(6+eps) = %v",
				seed, res.Matching.Value(), opt/(6+eps))
		}
	}
}

func TestStackMRStrictCostsMoreRoundsThanRelaxed(t *testing.T) {
	// The paper excludes Algorithm 1 from the evaluation because the
	// overflow machinery is inefficient; verify the direction of the
	// gap in aggregate.
	ctx := context.Background()
	var strictRounds, relaxedRounds int
	for seed := int64(0); seed < 8; seed++ {
		g := graph.RandomBipartite(graph.RandomConfig{
			NumItems: 15, NumConsumers: 12, EdgeProb: 0.45,
			MaxWeight: 6, MaxCapacity: 3, Seed: seed + 40,
		})
		rs, err := StackMRStrict(ctx, g, stackOpts(1, seed))
		if err != nil {
			t.Fatal(err)
		}
		rr, err := StackMR(ctx, g, stackOpts(1, seed))
		if err != nil {
			t.Fatal(err)
		}
		strictRounds += rs.Rounds
		relaxedRounds += rr.Rounds
	}
	if strictRounds < relaxedRounds {
		t.Logf("note: strict=%d relaxed=%d (strict usually pays extra rounds)",
			strictRounds, relaxedRounds)
	}
	if strictRounds <= 0 || relaxedRounds <= 0 {
		t.Fatal("no rounds recorded")
	}
}

func TestStackMRStrictDeterministic(t *testing.T) {
	ctx := context.Background()
	g := graph.RandomBipartite(graph.RandomConfig{
		NumItems: 10, NumConsumers: 10, EdgeProb: 0.4,
		MaxWeight: 3, MaxCapacity: 2, Seed: 70,
	})
	a, err := StackMRStrict(ctx, g, stackOpts(1, 5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := StackMRStrict(ctx, g, stackOpts(1, 5))
	if err != nil {
		t.Fatal(err)
	}
	ia, ib := a.Matching.EdgeIndexes(), b.Matching.EdgeIndexes()
	if len(ia) != len(ib) {
		t.Fatal("same seed, different sizes")
	}
	for i := range ia {
		if ia[i] != ib[i] {
			t.Fatal("same seed, different matchings")
		}
	}
}

func TestStackMRStrictSmallCases(t *testing.T) {
	ctx := context.Background()
	// Single edge.
	g := graph.NewBipartite(1, 1)
	g.SetCapacity(0, 1)
	g.SetCapacity(1, 1)
	g.AddEdge(0, 1, 2)
	res, err := StackMRStrict(ctx, g, stackOpts(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Matching.Size() != 1 {
		t.Errorf("single edge not matched")
	}
	// Empty graph.
	e := graph.NewBipartite(2, 2)
	e.SetAllCapacities(graph.ItemSide, 1)
	e.SetAllCapacities(graph.ConsumerSide, 1)
	res, err = StackMRStrict(ctx, e, stackOpts(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Matching.Size() != 0 {
		t.Error("matched edges in empty graph")
	}
	// Star forcing overflow: center capacity 1, many competing edges
	// with similar duals.
	const leaves = 8
	s := graph.NewBipartite(1, leaves)
	s.SetCapacity(s.ItemID(0), 1)
	for j := 0; j < leaves; j++ {
		s.SetCapacity(s.ConsumerID(j), 1)
		s.AddEdge(s.ItemID(0), s.ConsumerID(j), 1+float64(j)/100)
	}
	res, err = StackMRStrict(ctx, s, stackOpts(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Matching.Size() != 1 {
		t.Errorf("star matched %d edges, want exactly 1", res.Matching.Size())
	}
	if err := res.Matching.Validate(1); err != nil {
		t.Error(err)
	}
}

func TestStackMRStrictOnPath(t *testing.T) {
	ctx := context.Background()
	g := graph.PathGraph(30)
	res, err := StackMRStrict(ctx, g, stackOpts(1, 9))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Matching.Validate(1); err != nil {
		t.Error(err)
	}
	if res.Matching.Size() == 0 {
		t.Error("empty matching on path")
	}
}
