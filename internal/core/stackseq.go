package core

import (
	"repro/internal/graph"
)

// StackSequential is the centralized stack algorithm of Section 5.2: a
// sequential reference for the primal-dual mechanism that StackMR
// parallelizes. Edges are pushed on a stack in arbitrary (scan) order;
// pushing edge e = (u, v) raises both duals by
// δ(e) = (w(e) − y_u/b(u) − y_v/b(v))/2 (Equation 4). Edges that become
// weakly covered (Definition 1 with the given ε) are deleted from the
// graph; an edge that is pushed but not yet covered stays in the graph
// and may be pushed again, exactly as in the centralized description.
// When no edge is left, stack entries pop in LIFO order and an edge joins
// the solution when it is not already included and both endpoints have
// residual capacity, so the result is strictly feasible.
//
// Tests use StackSequential to sanity-check the MapReduce variant.
func StackSequential(g *graph.Bipartite, eps float64) *Result {
	if eps <= 0 {
		eps = 1
	}
	n := g.NumNodes()
	y := make([]float64, n)
	bcap := make([]float64, n)
	for v := 0; v < n; v++ {
		bcap[v] = float64(intCap(g, graph.NodeID(v)))
	}
	threshold := 1.0 / (3 + 2*eps)

	covered := func(e graph.Edge) bool {
		return y[e.Item]/bcap[e.Item]+y[e.Consumer]/bcap[e.Consumer] >=
			threshold*e.Weight-1e-15
	}

	alive := make([]bool, g.NumEdges())
	remaining := 0
	for i := range alive {
		e := g.Edge(i)
		if bcap[e.Item] > 0 && bcap[e.Consumer] > 0 {
			alive[i] = true
			remaining++
		}
	}

	var stack []int32
	// Push phase. Every push raises the covering sum of the pushed edge
	// by at least (w−sum)/max(b_u,b_v), so the sum approaches w
	// geometrically and crosses the weak-cover threshold after finitely
	// many pushes; the pass limit is a defensive guard far above that.
	const maxPasses = 1 << 20
	for pass := 0; remaining > 0 && pass < maxPasses; pass++ {
		for i := 0; i < g.NumEdges(); i++ {
			if !alive[i] {
				continue
			}
			e := g.Edge(i)
			if covered(e) {
				alive[i] = false
				remaining--
				continue
			}
			delta := (e.Weight - y[e.Item]/bcap[e.Item] - y[e.Consumer]/bcap[e.Consumer]) / 2
			y[e.Item] += delta
			y[e.Consumer] += delta
			stack = append(stack, int32(i))
			if covered(e) {
				alive[i] = false
				remaining--
			}
		}
	}

	// Pop phase: LIFO, strict feasibility, each edge at most once.
	residual := make([]int, n)
	for v := 0; v < n; v++ {
		residual[v] = intCap(g, graph.NodeID(v))
	}
	inSolution := make([]bool, g.NumEdges())
	var included []int32
	for i := len(stack) - 1; i >= 0; i-- {
		ei := stack[i]
		e := g.Edge(int(ei))
		if inSolution[ei] {
			continue
		}
		if residual[e.Item] > 0 && residual[e.Consumer] > 0 {
			inSolution[ei] = true
			included = append(included, ei)
			residual[e.Item]--
			residual[e.Consumer]--
		}
	}
	return &Result{
		Matching: NewMatching(g, included),
		Phases:   len(stack),
	}
}
