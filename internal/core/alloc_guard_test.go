//go:build !race

package core

import (
	"context"
	"testing"

	"repro/internal/graph"
)

// TestAllocGuardGreedyMRRun pins the allocation count of a complete
// small chained GreedyMR computation. The budget covers the one-time
// setup (node records, driver, first-round pool fills) plus per-round
// fixed overhead; the per-node and per-key hot-loop work — message
// copies, topByWeight selections, mark intersections, adjacency
// compaction — must stay allocation-free or this blows up by an order
// of magnitude (the instance runs ~500 node records across several
// rounds). CI runs it by name (-run TestAllocGuard); excluded under
// the race detector, which inflates allocation counts.
func TestAllocGuardGreedyMRRun(t *testing.T) {
	const limit = 1200
	g := graph.RandomBipartite(graph.RandomConfig{
		NumItems: 400, NumConsumers: 80, EdgeProb: 0.02,
		MaxWeight: 4, MaxCapacity: 6, Seed: 11,
	})
	ctx := context.Background()
	run := func() {
		if _, err := GreedyMR(ctx, g, GreedyMROptions{}); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm sync.Pool scratches
	avg := testing.AllocsPerRun(5, run)
	t.Logf("small chained GreedyMR run: %.0f allocs", avg)
	if avg > limit {
		t.Errorf("GreedyMR run allocates %.0f (> %d): the round loop's allocation discipline regressed", avg, limit)
	}
}
