// Package extsort implements bounded-memory external merge sort:
// records are buffered in memory, spilled as sorted runs to temporary
// files, and streamed back through a k-way loser-tree merge. It is the
// classical database technique behind the shuffle of a real MapReduce
// implementation (Hadoop spills map output exactly this way), and two
// parts of this repository stand on it: the spilling shuffle backend of
// internal/mapreduce (one Sorter per reduce partition, ordered by
// (key, sequence)), and the tools in cmd/ when a generated edge list
// outgrows memory.
//
// Run generation is pipelined: encoding and writing a spilled run
// happens on a background goroutine while the caller keeps filling (and
// sorting) the next buffer, so the producer never stalls behind the
// disk. Two buffers rotate through fill → sort → write → refill; peak
// buffered memory is therefore up to two MaxInMemory buffers while a
// run is in flight.
//
// Serialization is caller-supplied through the Codec interface, so any
// record type can be sorted without reflection. Run files are unlinked
// as soon as they are created — a crash leaks no temp files — and
// Spilled/Runs expose the external-memory footprint for job statistics.
//
// The merge breaks comparator ties by run creation order, so the whole
// sort is stable whenever the buffer sort is (both the default
// comparator sort and any radix sort installed via SetBufferSort are).
package extsort

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"slices"
	"sync"
	"sync/atomic"
)

// Codec serializes records of type T for spill files. Encode and Decode
// must round-trip: Decode(Encode(x)) == x. Decode returns io.EOF at the
// end of a run. Encode is invoked from the sorter's background writer
// goroutine — never concurrently with itself, but concurrently with the
// caller's Add loop — so a codec's scratch state must not be shared
// with the producing side.
type Codec[T any] interface {
	Encode(w io.Writer, rec T) error
	Decode(r io.Reader) (T, error)
}

// RunEncoder encodes one run's records in order. Implementations may
// batch records into blocks and keep dictionary state spanning the run;
// Flush writes any buffered tail before the run file is sealed.
type RunEncoder[T any] interface {
	Encode(w io.Writer, rec T) error
	Flush(w io.Writer) error
}

// RunDecoder decodes one run's records in order. Decode returns io.EOF
// at the clean end of the run.
type RunDecoder[T any] interface {
	Decode(r io.Reader) (T, error)
}

// StreamCodec is an optional Codec extension for formats with per-run
// state (block framing, dictionaries, compression). When the sorter's
// codec implements it, every run is written through a fresh RunEncoder
// and merged through a fresh per-run RunDecoder; the plain Encode and
// Decode methods go unused.
type StreamCodec[T any] interface {
	Codec[T]
	NewRunEncoder() RunEncoder[T]
	NewRunDecoder() RunDecoder[T]
}

// plainRunCodec adapts a record-at-a-time Codec to the run interfaces.
type plainRunCodec[T any] struct{ c Codec[T] }

func (p plainRunCodec[T]) Encode(w io.Writer, rec T) error { return p.c.Encode(w, rec) }
func (p plainRunCodec[T]) Flush(io.Writer) error           { return nil }
func (p plainRunCodec[T]) Decode(r io.Reader) (T, error)   { return p.c.Decode(r) }

func (s *Sorter[T]) runEncoder() RunEncoder[T] {
	if sc, ok := s.codec.(StreamCodec[T]); ok {
		return sc.NewRunEncoder()
	}
	return plainRunCodec[T]{s.codec}
}

func (s *Sorter[T]) runDecoder() RunDecoder[T] {
	if sc, ok := s.codec.(StreamCodec[T]); ok {
		return sc.NewRunDecoder()
	}
	return plainRunCodec[T]{s.codec}
}

// Config bounds the sorter's resource usage.
type Config struct {
	// MaxInMemory is the number of records buffered before a spill
	// (default 1<<20). With the pipelined writer up to two such buffers
	// are alive at once (one filling, one being written).
	MaxInMemory int
	// TempDir is the directory for spill files (default os.TempDir()).
	TempDir string
	// WriteBufBytes sizes the buffered writer used to encode each run
	// file (default 256 KiB). Larger buffers batch the encoded records
	// into fewer, larger write syscalls.
	WriteBufBytes int
}

func (c Config) maxInMemory() int {
	if c.MaxInMemory > 0 {
		return c.MaxInMemory
	}
	return 1 << 20
}

func (c Config) writeBufBytes() int {
	if c.WriteBufBytes > 0 {
		return c.WriteBufBytes
	}
	return 256 << 10
}

// runReadBufBytes sizes the per-run read buffer of the merge. Bounded
// (k runs merge with k such buffers) but large enough that a merge
// pass reads each run in long sequential slices.
const runReadBufBytes = 64 << 10

// Sorter accumulates records and produces a sorted iterator. Not safe
// for concurrent use by multiple goroutines (the internal writer
// pipeline is the sorter's own concern).
type Sorter[T any] struct {
	less    func(a, b T) bool
	bufSort func(buf []T)
	codec   Codec[T]
	cfg     Config
	buf     []T
	sorted  bool

	// Writer pipeline. The caller's goroutine sorts a full buffer and
	// hands it over on writeCh; the writer goroutine encodes and writes
	// it as one run file and hands the buffer back on freeCh for reuse.
	writeCh chan []T
	freeCh  chan []T
	wg      sync.WaitGroup

	// mu guards the fields below, which the writer goroutine mutates
	// while the caller may observe them (Runs, Spilled, error checks).
	mu      sync.Mutex
	runs    []*os.File
	spilled int64
	werr    error

	// runBytes counts encoded bytes written to run files, maintained
	// atomically so callers can read it while the writer runs.
	runBytes atomic.Int64
}

// countingWriter tallies bytes flowing to a run file into the sorter's
// runBytes counter. It sits between the buffered writer and the file,
// so it sees few, large writes.
type countingWriter struct {
	w io.Writer
	n *atomic.Int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n.Add(int64(n))
	return n, err
}

// New creates a Sorter ordering records by less.
func New[T any](less func(a, b T) bool, codec Codec[T], cfg Config) *Sorter[T] {
	return &Sorter[T]{less: less, codec: codec, cfg: cfg}
}

// SetBufferSort installs a replacement for the comparator sort applied
// to in-memory run buffers (each spilled run, and the final buffer of a
// sorter that never spilled). fn must order the slice exactly as a
// stable sort by less would — same order, same tie order — because the
// k-way merge still compares run heads with less and assumes every run
// is less-sorted. Callers use it to swap the generic O(n log n)
// comparator sort for a type-specialized linear-pass sort (the shuffle
// installs a radix sort over order-preserving key images). fn runs on
// the caller's goroutine (overlapping the previous run's encode+write),
// so it may keep per-sorter scratch without locking. Must be called
// before the first Add that triggers a spill.
func (s *Sorter[T]) SetBufferSort(fn func(buf []T)) { s.bufSort = fn }

// Add appends one record, spilling a sorted run to disk when the memory
// budget fills.
func (s *Sorter[T]) Add(rec T) error {
	if s.sorted {
		return errors.New("extsort: Add after Sort")
	}
	s.buf = append(s.buf, rec)
	if len(s.buf) >= s.cfg.maxInMemory() {
		return s.spill()
	}
	return nil
}

// AddBatch appends a slice of records with one bulk copy per budget
// window instead of a call and bounds check per record, spilling as
// the memory budget fills. Equivalent to calling Add for each record
// in order; the caller keeps ownership of recs.
func (s *Sorter[T]) AddBatch(recs []T) error {
	if s.sorted {
		return errors.New("extsort: Add after Sort")
	}
	limit := s.cfg.maxInMemory()
	for len(recs) > 0 {
		take := limit - len(s.buf)
		if take > len(recs) {
			take = len(recs)
		}
		s.buf = append(s.buf, recs[:take]...)
		recs = recs[take:]
		if len(s.buf) >= limit {
			if err := s.spill(); err != nil {
				return err
			}
		}
	}
	return nil
}

// sortBuf sorts the in-memory buffer: through the installed buffer
// sort when one is set (see SetBufferSort), otherwise stably by less.
// The generic slices.SortStableFunc avoids the reflection-based
// swapping of sort.SliceStable, which dominated large-buffer sorts.
func (s *Sorter[T]) sortBuf() {
	if s.bufSort != nil {
		s.bufSort(s.buf)
		return
	}
	slices.SortStableFunc(s.buf, func(a, b T) int {
		switch {
		case s.less(a, b):
			return -1
		case s.less(b, a):
			return 1
		default:
			return 0
		}
	})
}

// err returns the first error recorded by the writer goroutine.
func (s *Sorter[T]) err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.werr
}

// fail records a writer-side error (first one wins).
func (s *Sorter[T]) fail(err error) {
	s.mu.Lock()
	if s.werr == nil {
		s.werr = err
	}
	s.mu.Unlock()
}

// startWriter launches the background run writer. freeCh is primed with
// a nil buffer so the first spill returns immediately and the second
// buffer of the double-buffer pair is grown lazily. Capacity 2 keeps
// the writer's final hand-back non-blocking: Sort hands over the last
// buffer without taking one in exchange, so one returned buffer can sit
// in the channel alongside the primed slot.
func (s *Sorter[T]) startWriter() {
	s.writeCh = make(chan []T)
	s.freeCh = make(chan []T, 2)
	s.freeCh <- nil
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for buf := range s.writeCh {
			s.writeRun(buf)
			s.freeCh <- buf
		}
	}()
}

// drainWriter finishes the pipeline: no more runs will be handed over,
// and every in-flight run is on disk when it returns.
func (s *Sorter[T]) drainWriter() {
	if s.writeCh == nil {
		return
	}
	close(s.writeCh)
	s.wg.Wait()
	s.writeCh = nil
	s.freeCh = nil
}

// spill hands the sorted buffer to the writer pipeline and swaps in the
// free buffer of the pair, blocking only when the previous run is still
// being written.
func (s *Sorter[T]) spill() error {
	if len(s.buf) == 0 {
		return nil
	}
	s.sortBuf()
	if s.writeCh == nil {
		s.startWriter()
	}
	s.writeCh <- s.buf
	s.buf = (<-s.freeCh)[:0]
	// A write error surfaces on the next spill (or at Sort); the failed
	// writer keeps cycling buffers so the pipeline never deadlocks.
	return s.err()
}

// writeRun encodes one sorted buffer as a run file (writer goroutine).
func (s *Sorter[T]) writeRun(buf []T) {
	if s.err() != nil {
		return // the sorter already failed; drop subsequent runs
	}
	f, err := os.CreateTemp(s.cfg.TempDir, "extsort-run-*.bin")
	if err != nil {
		s.fail(fmt.Errorf("extsort: spill: %w", err))
		return
	}
	// The file is unlinked immediately; the open handle keeps the data
	// alive for the merge and crashes leak nothing.
	os.Remove(f.Name())
	bw := bufio.NewWriterSize(&countingWriter{w: f, n: &s.runBytes}, s.cfg.writeBufBytes())
	enc := s.runEncoder()
	for _, rec := range buf {
		if err := enc.Encode(bw, rec); err != nil {
			f.Close()
			s.fail(fmt.Errorf("extsort: encode: %w", err))
			return
		}
	}
	if err := enc.Flush(bw); err != nil {
		f.Close()
		s.fail(fmt.Errorf("extsort: encode: %w", err))
		return
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		s.fail(fmt.Errorf("extsort: flush: %w", err))
		return
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		s.fail(fmt.Errorf("extsort: rewind: %w", err))
		return
	}
	s.mu.Lock()
	s.runs = append(s.runs, f)
	s.spilled += int64(len(buf))
	s.mu.Unlock()
}

// Runs returns the number of spilled runs so far (exposed for tests and
// stats).
func (s *Sorter[T]) Runs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.runs)
}

// Spilled returns the number of records written to disk so far. Records
// that stay in the final in-memory buffer are never counted, so a sorter
// that fits its budget reports zero.
func (s *Sorter[T]) Spilled() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.spilled
}

// RunBytes returns the encoded bytes written to run files so far — the
// on-disk cost the codec achieved, for stats and codec comparisons.
func (s *Sorter[T]) RunBytes() int64 {
	return s.runBytes.Load()
}

// closeRuns releases every spilled run file.
func (s *Sorter[T]) closeRuns() {
	s.mu.Lock()
	runs := s.runs
	s.runs = nil
	s.mu.Unlock()
	for _, f := range runs {
		f.Close()
	}
}

// Discard abandons a sorter without sorting, draining the writer
// pipeline and closing any spilled run files (they are unlinked at
// creation, so closing releases their disk space). It is a no-op after
// Sort — the run files then belong to the returned Iterator — and safe
// to call more than once, so callers can defer it on error paths.
func (s *Sorter[T]) Discard() {
	if s.sorted {
		return
	}
	s.sorted = true
	s.drainWriter()
	s.closeRuns()
	s.buf = nil
}

// Sort finalizes the sorter and returns an iterator over all records in
// order. The Sorter must not be used afterwards; the iterator must be
// closed.
func (s *Sorter[T]) Sort() (*Iterator[T], error) {
	if s.sorted {
		return nil, errors.New("extsort: Sort called twice")
	}
	s.sorted = true
	if s.writeCh == nil {
		// Pure in-memory path: nothing ever spilled.
		s.sortBuf()
		return &Iterator[T]{mem: s.buf}, nil
	}
	// The final partial buffer becomes the last run, then the pipeline
	// drains so every run is fully on disk.
	if len(s.buf) > 0 {
		s.sortBuf()
		s.writeCh <- s.buf
		s.buf = nil
	}
	s.drainWriter()
	if err := s.err(); err != nil {
		s.closeRuns()
		return nil, err
	}
	// s.runs stays populated so Runs()/Spilled() keep reporting the
	// footprint after Sort; the files themselves now belong to the
	// iterator (Discard is a no-op once sorted, so no double close).
	s.mu.Lock()
	runs := s.runs
	s.mu.Unlock()
	it := &Iterator[T]{less: s.less}
	for _, f := range runs {
		src := &runSource[T]{r: bufio.NewReaderSize(f, runReadBufBytes), f: f, dec: s.runDecoder()}
		rec, err := src.dec.Decode(src.r)
		if err == io.EOF {
			f.Close()
			continue
		}
		if err != nil {
			// Close every run file, not just those already primed into
			// the iterator (a double Close on the consumed ones is
			// harmless); otherwise the failing and not-yet-primed runs
			// leak until process exit.
			for _, rf := range runs {
				rf.Close()
			}
			it.srcs = nil
			return nil, fmt.Errorf("extsort: prime run: %w", err)
		}
		src.head = rec
		it.srcs = append(it.srcs, src)
	}
	it.initTree()
	return it, nil
}

// runSource is one spilled run during the merge. Each run owns its
// decoder, so codecs with per-run state (blocks, dictionaries) never
// share state across runs.
type runSource[T any] struct {
	r    *bufio.Reader
	f    *os.File
	dec  RunDecoder[T]
	head T
	done bool
}

// Iterator streams records in sorted order.
type Iterator[T any] struct {
	// in-memory path
	mem []T
	pos int
	// merge path: a loser tree over the run sources. Unlike the
	// container/heap merge it replaces, each pop costs exactly
	// ceil(log2 k) comparisons (the heap pays up to 2 per level) and no
	// interface boxing. Leaf j sits at tree position k+j; internal
	// nodes 1..k-1 each store the losing leaf of their subtree and
	// win caches the overall winner.
	less func(a, b T) bool
	srcs []*runSource[T]
	lt   []int32
	win  int32
	live int
}

// beats reports whether leaf a's head precedes leaf b's in the merge.
// Exhausted sources lose to everything; comparator ties resolve to the
// lower leaf index, i.e. the earlier-created run — this is what makes
// the merge stable.
func (it *Iterator[T]) beats(a, b int32) bool {
	sa, sb := it.srcs[a], it.srcs[b]
	if sb.done {
		return true
	}
	if sa.done {
		return false
	}
	if a < b {
		return !it.less(sb.head, sa.head)
	}
	return it.less(sa.head, sb.head)
}

// initTree builds the loser tree over the primed sources.
func (it *Iterator[T]) initTree() {
	k := len(it.srcs)
	it.live = k
	if k == 0 {
		return
	}
	it.lt = make([]int32, k)
	if k == 1 {
		it.win = 0
		return
	}
	// winner(node) resolves the subtree rooted at the given tree
	// position, recording losers on the way up.
	var winner func(node int32) int32
	winner = func(node int32) int32 {
		if node >= int32(k) {
			return node - int32(k)
		}
		a, b := winner(2*node), winner(2*node+1)
		if it.beats(a, b) {
			it.lt[node] = b
			return a
		}
		it.lt[node] = a
		return b
	}
	it.win = winner(1)
}

// Next returns the next record; ok is false at the end of the stream.
func (it *Iterator[T]) Next() (rec T, ok bool, err error) {
	if it.srcs == nil {
		if it.pos >= len(it.mem) {
			var zero T
			return zero, false, nil
		}
		rec = it.mem[it.pos]
		it.pos++
		return rec, true, nil
	}
	if it.live == 0 {
		var zero T
		return zero, false, nil
	}
	w := it.win
	src := it.srcs[w]
	rec = src.head
	next, derr := src.dec.Decode(src.r)
	switch {
	case derr == io.EOF:
		src.f.Close()
		src.done = true
		it.live--
	case derr != nil:
		var zero T
		return zero, false, fmt.Errorf("extsort: merge decode: %w", derr)
	default:
		src.head = next
	}
	// Replay the path from the winner's leaf to the root: at each
	// internal node the stored loser challenges the rising candidate.
	k := int32(len(it.srcs))
	if k > 1 {
		cur := w
		for node := (k + w) / 2; node >= 1; node /= 2 {
			if it.beats(it.lt[node], cur) {
				cur, it.lt[node] = it.lt[node], cur
			}
		}
		it.win = cur
	}
	return rec, true, nil
}

// Close releases any remaining run files. Safe to call multiple times.
func (it *Iterator[T]) Close() {
	for _, src := range it.srcs {
		src.f.Close()
	}
	it.srcs = it.srcs[:0]
	it.lt = nil
	it.live = 0
	it.mem = nil
}

// Drain reads the remaining records into a slice (convenience for tests
// and small outputs) and closes the iterator.
func (it *Iterator[T]) Drain() ([]T, error) {
	defer it.Close()
	var out []T
	for {
		rec, ok, err := it.Next()
		if err != nil {
			return out, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, rec)
	}
}
