// Package extsort implements bounded-memory external merge sort:
// records are buffered in memory, spilled as sorted runs to temporary
// files, and streamed back through a k-way heap merge. It is the
// classical database technique behind the shuffle of a real MapReduce
// implementation (Hadoop spills map output exactly this way) and backs
// the tools in cmd/ when a generated edge list outgrows memory.
//
// Serialization is caller-supplied through the Codec interface, so any
// record type can be sorted without reflection.
package extsort

import (
	"bufio"
	"container/heap"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
)

// Codec serializes records of type T for spill files. Encode and Decode
// must round-trip: Decode(Encode(x)) == x. Decode returns io.EOF at the
// end of a run.
type Codec[T any] interface {
	Encode(w io.Writer, rec T) error
	Decode(r io.Reader) (T, error)
}

// Config bounds the sorter's resource usage.
type Config struct {
	// MaxInMemory is the number of records buffered before a spill
	// (default 1<<20).
	MaxInMemory int
	// TempDir is the directory for spill files (default os.TempDir()).
	TempDir string
}

func (c Config) maxInMemory() int {
	if c.MaxInMemory > 0 {
		return c.MaxInMemory
	}
	return 1 << 20
}

// Sorter accumulates records and produces a sorted iterator. Not safe
// for concurrent use.
type Sorter[T any] struct {
	less   func(a, b T) bool
	codec  Codec[T]
	cfg    Config
	buf    []T
	runs   []*os.File
	sorted bool
}

// New creates a Sorter ordering records by less.
func New[T any](less func(a, b T) bool, codec Codec[T], cfg Config) *Sorter[T] {
	return &Sorter[T]{less: less, codec: codec, cfg: cfg}
}

// Add appends one record, spilling a sorted run to disk when the memory
// budget fills.
func (s *Sorter[T]) Add(rec T) error {
	if s.sorted {
		return errors.New("extsort: Add after Sort")
	}
	s.buf = append(s.buf, rec)
	if len(s.buf) >= s.cfg.maxInMemory() {
		return s.spill()
	}
	return nil
}

// spill writes the sorted buffer as one run file.
func (s *Sorter[T]) spill() error {
	if len(s.buf) == 0 {
		return nil
	}
	sort.SliceStable(s.buf, func(i, j int) bool { return s.less(s.buf[i], s.buf[j]) })
	f, err := os.CreateTemp(s.cfg.TempDir, "extsort-run-*.bin")
	if err != nil {
		return fmt.Errorf("extsort: spill: %w", err)
	}
	// The file is unlinked after open on close; keep the handle for the
	// merge and remove the name now so crashes do not leak files.
	defer os.Remove(f.Name())
	bw := bufio.NewWriter(f)
	for _, rec := range s.buf {
		if err := s.codec.Encode(bw, rec); err != nil {
			f.Close()
			return fmt.Errorf("extsort: encode: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("extsort: flush: %w", err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("extsort: rewind: %w", err)
	}
	s.runs = append(s.runs, f)
	s.buf = s.buf[:0]
	return nil
}

// Runs returns the number of spilled runs so far (exposed for tests and
// stats).
func (s *Sorter[T]) Runs() int { return len(s.runs) }

// Sort finalizes the sorter and returns an iterator over all records in
// order. The Sorter must not be used afterwards; the iterator must be
// closed.
func (s *Sorter[T]) Sort() (*Iterator[T], error) {
	if s.sorted {
		return nil, errors.New("extsort: Sort called twice")
	}
	s.sorted = true
	if len(s.runs) == 0 {
		// Pure in-memory path.
		sort.SliceStable(s.buf, func(i, j int) bool { return s.less(s.buf[i], s.buf[j]) })
		return &Iterator[T]{mem: s.buf}, nil
	}
	if err := s.spill(); err != nil {
		return nil, err
	}
	it := &Iterator[T]{codec: s.codec, less: s.less}
	for _, f := range s.runs {
		src := &runSource[T]{r: bufio.NewReader(f), f: f}
		rec, err := s.codec.Decode(src.r)
		if err == io.EOF {
			f.Close()
			continue
		}
		if err != nil {
			it.Close()
			return nil, fmt.Errorf("extsort: prime run: %w", err)
		}
		src.head = rec
		it.srcs = append(it.srcs, src)
	}
	heap.Init((*mergeHeap[T])(it))
	return it, nil
}

// runSource is one spilled run during the merge.
type runSource[T any] struct {
	r    *bufio.Reader
	f    *os.File
	head T
}

// Iterator streams records in sorted order.
type Iterator[T any] struct {
	// in-memory path
	mem []T
	pos int
	// merge path
	codec Codec[T]
	less  func(a, b T) bool
	srcs  []*runSource[T]
}

// Next returns the next record; ok is false at the end of the stream.
func (it *Iterator[T]) Next() (rec T, ok bool, err error) {
	if it.srcs == nil {
		if it.pos >= len(it.mem) {
			var zero T
			return zero, false, nil
		}
		rec = it.mem[it.pos]
		it.pos++
		return rec, true, nil
	}
	if len(it.srcs) == 0 {
		var zero T
		return zero, false, nil
	}
	top := it.srcs[0]
	rec = top.head
	next, derr := it.codec.Decode(top.r)
	switch {
	case derr == io.EOF:
		top.f.Close()
		heap.Pop((*mergeHeap[T])(it))
	case derr != nil:
		var zero T
		return zero, false, fmt.Errorf("extsort: merge decode: %w", derr)
	default:
		top.head = next
		heap.Fix((*mergeHeap[T])(it), 0)
	}
	return rec, true, nil
}

// Close releases any remaining run files. Safe to call multiple times.
func (it *Iterator[T]) Close() {
	for _, src := range it.srcs {
		src.f.Close()
	}
	it.srcs = it.srcs[:0]
	it.mem = nil
}

// Drain reads the remaining records into a slice (convenience for tests
// and small outputs) and closes the iterator.
func (it *Iterator[T]) Drain() ([]T, error) {
	defer it.Close()
	var out []T
	for {
		rec, ok, err := it.Next()
		if err != nil {
			return out, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, rec)
	}
}

// mergeHeap adapts Iterator's sources to container/heap.
type mergeHeap[T any] Iterator[T]

func (h *mergeHeap[T]) Len() int { return len(h.srcs) }
func (h *mergeHeap[T]) Less(i, j int) bool {
	return h.less(h.srcs[i].head, h.srcs[j].head)
}
func (h *mergeHeap[T]) Swap(i, j int) { h.srcs[i], h.srcs[j] = h.srcs[j], h.srcs[i] }
func (h *mergeHeap[T]) Push(x any)    { h.srcs = append(h.srcs, x.(*runSource[T])) }
func (h *mergeHeap[T]) Pop() any {
	n := len(h.srcs)
	x := h.srcs[n-1]
	h.srcs = h.srcs[:n-1]
	return x
}
