// Package extsort implements bounded-memory external merge sort:
// records are buffered in memory, spilled as sorted runs to temporary
// files, and streamed back through a k-way heap merge. It is the
// classical database technique behind the shuffle of a real MapReduce
// implementation (Hadoop spills map output exactly this way), and two
// parts of this repository stand on it: the spilling shuffle backend of
// internal/mapreduce (one Sorter per reduce partition, ordered by
// (key, sequence)), and the tools in cmd/ when a generated edge list
// outgrows memory.
//
// Serialization is caller-supplied through the Codec interface, so any
// record type can be sorted without reflection. Run files are unlinked
// as soon as they are created — a crash leaks no temp files — and
// Spilled/Runs expose the external-memory footprint for job statistics.
package extsort

import (
	"bufio"
	"container/heap"
	"errors"
	"fmt"
	"io"
	"os"
	"slices"
)

// Codec serializes records of type T for spill files. Encode and Decode
// must round-trip: Decode(Encode(x)) == x. Decode returns io.EOF at the
// end of a run.
type Codec[T any] interface {
	Encode(w io.Writer, rec T) error
	Decode(r io.Reader) (T, error)
}

// Config bounds the sorter's resource usage.
type Config struct {
	// MaxInMemory is the number of records buffered before a spill
	// (default 1<<20).
	MaxInMemory int
	// TempDir is the directory for spill files (default os.TempDir()).
	TempDir string
}

func (c Config) maxInMemory() int {
	if c.MaxInMemory > 0 {
		return c.MaxInMemory
	}
	return 1 << 20
}

// Sorter accumulates records and produces a sorted iterator. Not safe
// for concurrent use.
type Sorter[T any] struct {
	less    func(a, b T) bool
	bufSort func(buf []T)
	codec   Codec[T]
	cfg     Config
	buf     []T
	runs    []*os.File
	spilled int64
	sorted  bool
}

// New creates a Sorter ordering records by less.
func New[T any](less func(a, b T) bool, codec Codec[T], cfg Config) *Sorter[T] {
	return &Sorter[T]{less: less, codec: codec, cfg: cfg}
}

// SetBufferSort installs a replacement for the comparator sort applied
// to in-memory run buffers (each spilled run, and the final buffer of a
// sorter that never spilled). fn must order the slice exactly as a
// stable sort by less would — same order, same tie order — because the
// k-way merge still compares run heads with less and assumes every run
// is less-sorted. Callers use it to swap the generic O(n log n)
// comparator sort for a type-specialized linear-pass sort (the shuffle
// installs a radix sort over order-preserving key images). Must be
// called before the first Add that triggers a spill.
func (s *Sorter[T]) SetBufferSort(fn func(buf []T)) { s.bufSort = fn }

// Add appends one record, spilling a sorted run to disk when the memory
// budget fills.
func (s *Sorter[T]) Add(rec T) error {
	if s.sorted {
		return errors.New("extsort: Add after Sort")
	}
	s.buf = append(s.buf, rec)
	if len(s.buf) >= s.cfg.maxInMemory() {
		return s.spill()
	}
	return nil
}

// sortBuf sorts the in-memory buffer: through the installed buffer
// sort when one is set (see SetBufferSort), otherwise stably by less.
// The generic slices.SortStableFunc avoids the reflection-based
// swapping of sort.SliceStable, which dominated large-buffer sorts.
func (s *Sorter[T]) sortBuf() {
	if s.bufSort != nil {
		s.bufSort(s.buf)
		return
	}
	slices.SortStableFunc(s.buf, func(a, b T) int {
		switch {
		case s.less(a, b):
			return -1
		case s.less(b, a):
			return 1
		default:
			return 0
		}
	})
}

// spill writes the sorted buffer as one run file.
func (s *Sorter[T]) spill() error {
	if len(s.buf) == 0 {
		return nil
	}
	s.sortBuf()
	f, err := os.CreateTemp(s.cfg.TempDir, "extsort-run-*.bin")
	if err != nil {
		return fmt.Errorf("extsort: spill: %w", err)
	}
	// The file is unlinked after open on close; keep the handle for the
	// merge and remove the name now so crashes do not leak files.
	defer os.Remove(f.Name())
	bw := bufio.NewWriter(f)
	for _, rec := range s.buf {
		if err := s.codec.Encode(bw, rec); err != nil {
			f.Close()
			return fmt.Errorf("extsort: encode: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("extsort: flush: %w", err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("extsort: rewind: %w", err)
	}
	s.runs = append(s.runs, f)
	s.spilled += int64(len(s.buf))
	s.buf = s.buf[:0]
	return nil
}

// Runs returns the number of spilled runs so far (exposed for tests and
// stats).
func (s *Sorter[T]) Runs() int { return len(s.runs) }

// Spilled returns the number of records written to disk so far. Records
// that stay in the final in-memory buffer are never counted, so a sorter
// that fits its budget reports zero.
func (s *Sorter[T]) Spilled() int64 { return s.spilled }

// Discard abandons a sorter without sorting, closing any spilled run
// files (they are unlinked at creation, so closing releases their disk
// space). It is a no-op after Sort — the run files then belong to the
// returned Iterator — and safe to call more than once, so callers can
// defer it on error paths.
func (s *Sorter[T]) Discard() {
	if s.sorted {
		return
	}
	s.sorted = true
	for _, f := range s.runs {
		f.Close()
	}
	s.runs = nil
	s.buf = nil
}

// Sort finalizes the sorter and returns an iterator over all records in
// order. The Sorter must not be used afterwards; the iterator must be
// closed.
func (s *Sorter[T]) Sort() (*Iterator[T], error) {
	if s.sorted {
		return nil, errors.New("extsort: Sort called twice")
	}
	s.sorted = true
	if len(s.runs) == 0 {
		// Pure in-memory path.
		s.sortBuf()
		return &Iterator[T]{mem: s.buf}, nil
	}
	if err := s.spill(); err != nil {
		// sorted is already true, so Discard would no-op: release the
		// earlier runs here or their handles leak until process exit.
		for _, f := range s.runs {
			f.Close()
		}
		s.runs = nil
		return nil, err
	}
	it := &Iterator[T]{codec: s.codec, less: s.less}
	for _, f := range s.runs {
		src := &runSource[T]{r: bufio.NewReader(f), f: f}
		rec, err := s.codec.Decode(src.r)
		if err == io.EOF {
			f.Close()
			continue
		}
		if err != nil {
			// Close every run file, not just those already primed
			// into the iterator (a double Close on the consumed ones
			// is harmless); otherwise the failing and not-yet-primed
			// runs leak until process exit.
			for _, rf := range s.runs {
				rf.Close()
			}
			it.srcs = nil
			return nil, fmt.Errorf("extsort: prime run: %w", err)
		}
		src.head = rec
		it.srcs = append(it.srcs, src)
	}
	heap.Init((*mergeHeap[T])(it))
	return it, nil
}

// runSource is one spilled run during the merge.
type runSource[T any] struct {
	r    *bufio.Reader
	f    *os.File
	head T
}

// Iterator streams records in sorted order.
type Iterator[T any] struct {
	// in-memory path
	mem []T
	pos int
	// merge path
	codec Codec[T]
	less  func(a, b T) bool
	srcs  []*runSource[T]
}

// Next returns the next record; ok is false at the end of the stream.
func (it *Iterator[T]) Next() (rec T, ok bool, err error) {
	if it.srcs == nil {
		if it.pos >= len(it.mem) {
			var zero T
			return zero, false, nil
		}
		rec = it.mem[it.pos]
		it.pos++
		return rec, true, nil
	}
	if len(it.srcs) == 0 {
		var zero T
		return zero, false, nil
	}
	top := it.srcs[0]
	rec = top.head
	next, derr := it.codec.Decode(top.r)
	switch {
	case derr == io.EOF:
		top.f.Close()
		heap.Pop((*mergeHeap[T])(it))
	case derr != nil:
		var zero T
		return zero, false, fmt.Errorf("extsort: merge decode: %w", derr)
	default:
		top.head = next
		heap.Fix((*mergeHeap[T])(it), 0)
	}
	return rec, true, nil
}

// Close releases any remaining run files. Safe to call multiple times.
func (it *Iterator[T]) Close() {
	for _, src := range it.srcs {
		src.f.Close()
	}
	it.srcs = it.srcs[:0]
	it.mem = nil
}

// Drain reads the remaining records into a slice (convenience for tests
// and small outputs) and closes the iterator.
func (it *Iterator[T]) Drain() ([]T, error) {
	defer it.Close()
	var out []T
	for {
		rec, ok, err := it.Next()
		if err != nil {
			return out, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, rec)
	}
}

// mergeHeap adapts Iterator's sources to container/heap.
type mergeHeap[T any] Iterator[T]

func (h *mergeHeap[T]) Len() int { return len(h.srcs) }
func (h *mergeHeap[T]) Less(i, j int) bool {
	return h.less(h.srcs[i].head, h.srcs[j].head)
}
func (h *mergeHeap[T]) Swap(i, j int) { h.srcs[i], h.srcs[j] = h.srcs[j], h.srcs[i] }
func (h *mergeHeap[T]) Push(x any)    { h.srcs = append(h.srcs, x.(*runSource[T])) }
func (h *mergeHeap[T]) Pop() any {
	n := len(h.srcs)
	x := h.srcs[n-1]
	h.srcs = h.srcs[:n-1]
	return x
}
