package extsort

import (
	"encoding/binary"
	"io"
	"math"
)

// WeightedEdgeRec is the record type the cmd tools sort externally: an
// edge with its endpoints and weight.
type WeightedEdgeRec struct {
	Item     int32
	Consumer int32
	Weight   float64
}

// EdgeCodec serializes WeightedEdgeRec as 16 fixed little-endian bytes.
type EdgeCodec struct{}

// Encode writes one record.
func (EdgeCodec) Encode(w io.Writer, rec WeightedEdgeRec) error {
	var buf [16]byte
	binary.LittleEndian.PutUint32(buf[0:4], uint32(rec.Item))
	binary.LittleEndian.PutUint32(buf[4:8], uint32(rec.Consumer))
	binary.LittleEndian.PutUint64(buf[8:16], math.Float64bits(rec.Weight))
	_, err := w.Write(buf[:])
	return err
}

// Decode reads one record, returning io.EOF cleanly at a run boundary.
func (EdgeCodec) Decode(r io.Reader) (WeightedEdgeRec, error) {
	var buf [16]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			err = io.EOF
		}
		return WeightedEdgeRec{}, err
	}
	return WeightedEdgeRec{
		Item:     int32(binary.LittleEndian.Uint32(buf[0:4])),
		Consumer: int32(binary.LittleEndian.Uint32(buf[4:8])),
		Weight:   math.Float64frombits(binary.LittleEndian.Uint64(buf[8:16])),
	}, nil
}

// ByWeightDesc orders edges by decreasing weight with deterministic
// (item, consumer) tie-breaking — the processing order of the
// centralized greedy algorithm.
func ByWeightDesc(a, b WeightedEdgeRec) bool {
	if a.Weight != b.Weight {
		return a.Weight > b.Weight
	}
	if a.Item != b.Item {
		return a.Item < b.Item
	}
	return a.Consumer < b.Consumer
}
