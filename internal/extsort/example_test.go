package extsort_test

import (
	"fmt"

	"repro/internal/extsort"
)

// Example sorts more records than the memory budget allows, forcing
// sorted runs to disk and a streaming merge on the way back.
func Example() {
	s := extsort.New(extsort.ByWeightDesc, extsort.EdgeCodec{}, extsort.Config{
		MaxInMemory: 4, // spill after every 4 records
	})
	for i := 0; i < 10; i++ {
		err := s.Add(extsort.WeightedEdgeRec{
			Item:     int32(i),
			Consumer: int32(i % 3),
			Weight:   float64(i%5) + 0.5,
		})
		if err != nil {
			panic(err)
		}
	}
	it, err := s.Sort()
	if err != nil {
		panic(err)
	}
	recs, err := it.Drain()
	if err != nil {
		panic(err)
	}
	fmt.Printf("runs spilled: %d, spilled records: %d\n", s.Runs(), s.Spilled())
	fmt.Printf("heaviest: item=%d w=%.1f\n", recs[0].Item, recs[0].Weight)
	fmt.Printf("lightest: item=%d w=%.1f\n", recs[len(recs)-1].Item, recs[len(recs)-1].Weight)
	// Output:
	// runs spilled: 3, spilled records: 10
	// heaviest: item=4 w=4.5
	// lightest: item=5 w=0.5
}
