package extsort

import (
	"bytes"
	"io"
	"math/rand"
	"os"
	"sort"
	"testing"
	"testing/quick"
)

func intLess(a, b int32) bool { return a < b }

// int32Codec serializes int32 records for tests.
type int32Codec struct{}

func (int32Codec) Encode(w io.Writer, rec int32) error {
	var buf [4]byte
	buf[0] = byte(rec)
	buf[1] = byte(rec >> 8)
	buf[2] = byte(rec >> 16)
	buf[3] = byte(rec >> 24)
	_, err := w.Write(buf[:])
	return err
}

func (int32Codec) Decode(r io.Reader) (int32, error) {
	var buf [4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			err = io.EOF
		}
		return 0, err
	}
	return int32(buf[0]) | int32(buf[1])<<8 | int32(buf[2])<<16 | int32(buf[3])<<24, nil
}

func sortAll(t *testing.T, vals []int32, maxInMem int) []int32 {
	t.Helper()
	s := New(intLess, int32Codec{}, Config{MaxInMemory: maxInMem, TempDir: t.TempDir()})
	for _, v := range vals {
		if err := s.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	it, err := s.Sort()
	if err != nil {
		t.Fatal(err)
	}
	out, err := it.Drain()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestInMemoryPath(t *testing.T) {
	got := sortAll(t, []int32{5, 2, 9, 1, 2}, 100)
	want := []int32{1, 2, 2, 5, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestSpillingPath(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]int32, 10000)
	for i := range vals {
		vals[i] = rng.Int31n(5000)
	}
	s := New(intLess, int32Codec{}, Config{MaxInMemory: 512, TempDir: t.TempDir()})
	for _, v := range vals {
		if err := s.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	if s.Runs() < 10 {
		t.Fatalf("expected many spilled runs, got %d", s.Runs())
	}
	it, err := s.Sort()
	if err != nil {
		t.Fatal(err)
	}
	got, err := it.Drain()
	if err != nil {
		t.Fatal(err)
	}
	want := append([]int32(nil), vals...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mismatch at %d: %d != %d", i, got[i], want[i])
		}
	}
}

func TestEmptyInput(t *testing.T) {
	got := sortAll(t, nil, 4)
	if len(got) != 0 {
		t.Errorf("got %v from empty input", got)
	}
}

func TestQuickMatchesSortSlice(t *testing.T) {
	prop := func(raw []int32, memBits uint8) bool {
		maxInMem := int(memBits)%32 + 2
		s := New(intLess, int32Codec{}, Config{MaxInMemory: maxInMem, TempDir: t.TempDir()})
		for _, v := range raw {
			if err := s.Add(v); err != nil {
				return false
			}
		}
		it, err := s.Sort()
		if err != nil {
			return false
		}
		got, err := it.Drain()
		if err != nil {
			return false
		}
		want := append([]int32(nil), raw...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestAddAfterSortRejected(t *testing.T) {
	s := New(intLess, int32Codec{}, Config{TempDir: t.TempDir()})
	it, err := s.Sort()
	if err != nil {
		t.Fatal(err)
	}
	it.Close()
	if err := s.Add(1); err == nil {
		t.Error("Add after Sort accepted")
	}
	if _, err := s.Sort(); err == nil {
		t.Error("double Sort accepted")
	}
}

func TestIteratorCloseIdempotent(t *testing.T) {
	s := New(intLess, int32Codec{}, Config{MaxInMemory: 2, TempDir: t.TempDir()})
	for i := int32(0); i < 10; i++ {
		if err := s.Add(10 - i); err != nil {
			t.Fatal(err)
		}
	}
	it, err := s.Sort()
	if err != nil {
		t.Fatal(err)
	}
	it.Close()
	it.Close()
	if _, ok, err := it.Next(); ok || err != nil {
		t.Error("closed iterator yielded a record")
	}
}

func TestEdgeCodecRoundTrip(t *testing.T) {
	recs := []WeightedEdgeRec{
		{Item: 0, Consumer: 0, Weight: 0.5},
		{Item: 2147483647, Consumer: -1, Weight: 1e-300},
		{Item: 42, Consumer: 7, Weight: 123456.789},
	}
	var buf bytes.Buffer
	for _, r := range recs {
		if err := (EdgeCodec{}).Encode(&buf, r); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range recs {
		got, err := (EdgeCodec{}).Decode(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("round trip %v -> %v", want, got)
		}
	}
	if _, err := (EdgeCodec{}).Decode(&buf); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestByWeightDescOrdering(t *testing.T) {
	a := WeightedEdgeRec{Item: 1, Consumer: 1, Weight: 5}
	b := WeightedEdgeRec{Item: 0, Consumer: 0, Weight: 3}
	c := WeightedEdgeRec{Item: 0, Consumer: 1, Weight: 3}
	if !ByWeightDesc(a, b) || ByWeightDesc(b, a) {
		t.Error("weight ordering wrong")
	}
	if !ByWeightDesc(b, c) || ByWeightDesc(c, b) {
		t.Error("tie-break ordering wrong")
	}
}

func TestExternalSortEdgesByWeight(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := New(ByWeightDesc, EdgeCodec{}, Config{MaxInMemory: 64, TempDir: t.TempDir()})
	for i := 0; i < 1000; i++ {
		err := s.Add(WeightedEdgeRec{
			Item: rng.Int31n(100), Consumer: rng.Int31n(50),
			Weight: rng.Float64(),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	it, err := s.Sort()
	if err != nil {
		t.Fatal(err)
	}
	out, err := it.Drain()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(out); i++ {
		if out[i].Weight > out[i-1].Weight {
			t.Fatalf("weights not descending at %d", i)
		}
	}
}

// TestPipelinedWriterTinyBudget forces the double-buffered writer
// through hundreds of handoffs with a budget small enough that nearly
// every record spills, and checks the merged stream is exactly the
// sorted input. A tiny write buffer exercises mid-record bufio flushes.
func TestPipelinedWriterTinyBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	vals := make([]int32, 5000)
	for i := range vals {
		vals[i] = rng.Int31n(1000) - 500
	}
	s := New(intLess, int32Codec{}, Config{
		MaxInMemory:   8,
		TempDir:       t.TempDir(),
		WriteBufBytes: 16,
	})
	for _, v := range vals {
		if err := s.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	if s.Runs() < 500 {
		t.Fatalf("expected hundreds of pipelined runs, got %d", s.Runs())
	}
	it, err := s.Sort()
	if err != nil {
		t.Fatal(err)
	}
	got, err := it.Drain()
	if err != nil {
		t.Fatal(err)
	}
	want := append([]int32(nil), vals...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("lost records: %d of %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mismatch at %d: %d != %d", i, got[i], want[i])
		}
	}
	if s.Spilled() != int64(len(vals)) {
		t.Errorf("Spilled() = %d, want %d (everything spilled at budget 8)", s.Spilled(), len(vals))
	}
}

// TestPipelinedWriterStable pins the merge's new stability guarantee:
// records that compare equal come back in insertion order, because the
// buffer sort is stable and the loser tree breaks ties by run creation
// order.
func TestPipelinedWriterStable(t *testing.T) {
	type rec = WeightedEdgeRec
	s := New(func(a, b rec) bool { return a.Weight > b.Weight }, EdgeCodec{},
		Config{MaxInMemory: 7, TempDir: t.TempDir()})
	const n = 200
	for i := 0; i < n; i++ {
		// Three weight classes; Item records insertion order.
		if err := s.Add(rec{Item: int32(i), Weight: float64(i % 3)}); err != nil {
			t.Fatal(err)
		}
	}
	it, err := s.Sort()
	if err != nil {
		t.Fatal(err)
	}
	out, err := it.Drain()
	if err != nil {
		t.Fatal(err)
	}
	lastItem := map[float64]int32{}
	for i, r := range out {
		if i > 0 && out[i-1].Weight < r.Weight {
			t.Fatalf("weights not descending at %d", i)
		}
		if prev, ok := lastItem[r.Weight]; ok && prev >= r.Item {
			t.Fatalf("stability broken within weight %v: item %d after %d", r.Weight, r.Item, prev)
		}
		lastItem[r.Weight] = r.Item
	}
}

// TestPipelinedWriterSurfacesErrors checks that a failing spill target
// reports an error on the producer side instead of silently dropping
// runs: the write happens on a background goroutine, so the error may
// arrive on a later Add or at Sort, but it must arrive.
func TestPipelinedWriterSurfacesErrors(t *testing.T) {
	s := New(intLess, int32Codec{}, Config{
		MaxInMemory: 4,
		TempDir:     "/nonexistent-extsort-dir/really",
	})
	defer s.Discard() // drains the writer if Sort was never reached
	var sawErr error
	for i := int32(0); i < 64 && sawErr == nil; i++ {
		sawErr = s.Add(i)
	}
	if sawErr == nil {
		_, sawErr = s.Sort()
	}
	if sawErr == nil {
		t.Fatal("spilling into a nonexistent TempDir reported no error")
	}
}

func countOpenFDs(t *testing.T) int {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Skip("no /proc/self/fd on this platform")
	}
	return len(ents)
}

func TestDiscardReleasesRunFiles(t *testing.T) {
	before := countOpenFDs(t)
	s := New(ByWeightDesc, EdgeCodec{}, Config{MaxInMemory: 4})
	for i := 0; i < 40; i++ {
		if err := s.Add(WeightedEdgeRec{Item: int32(i), Weight: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if s.Runs() == 0 {
		t.Fatal("expected spilled runs")
	}
	s.Discard()
	s.Discard() // idempotent
	if got := countOpenFDs(t); got != before {
		t.Errorf("open fds %d after Discard, want %d", got, before)
	}
	if _, err := s.Sort(); err == nil {
		t.Error("Sort after Discard should fail (sorter finalized)")
	}
}

func TestDiscardAfterSortIsNoOp(t *testing.T) {
	s := New(ByWeightDesc, EdgeCodec{}, Config{MaxInMemory: 4})
	for i := 0; i < 10; i++ {
		if err := s.Add(WeightedEdgeRec{Item: int32(i), Weight: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	it, err := s.Sort()
	if err != nil {
		t.Fatal(err)
	}
	s.Discard() // must not steal the iterator's run files
	recs, err := it.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 10 {
		t.Fatalf("got %d records after Discard-after-Sort, want 10", len(recs))
	}
}

// TestSetBufferSortUsedForRuns installs a custom buffer sort and checks
// that every run buffer (spilled and final) goes through it and that the
// merged stream is still globally sorted.
func TestSetBufferSortUsedForRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vals := make([]int32, 1000)
	for i := range vals {
		vals[i] = int32(rng.Intn(500))
	}
	s := New(intLess, int32Codec{}, Config{MaxInMemory: 64, TempDir: t.TempDir()})
	calls := 0
	s.SetBufferSort(func(buf []int32) {
		calls++
		sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	})
	for _, v := range vals {
		if err := s.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	it, err := s.Sort()
	if err != nil {
		t.Fatal(err)
	}
	out, err := it.Drain()
	if err != nil {
		t.Fatal(err)
	}
	// 1000 records at a 64-record budget: every one of the ~16 runs must
	// have gone through the installed sort.
	if calls < 15 {
		t.Fatalf("buffer sort ran %d times, expected one call per run", calls)
	}
	if len(out) != len(vals) {
		t.Fatalf("lost records: %d of %d", len(out), len(vals))
	}
	for i := 1; i < len(out); i++ {
		if out[i] < out[i-1] {
			t.Fatalf("merge output out of order at %d", i)
		}
	}
}
