package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/mapreduce"
)

// ViolationRow is one point of Figure 4: the average relative capacity
// violation ε′ of StackMR for one (ε, α, σ) combination.
type ViolationRow struct {
	Eps      float64
	Alpha    float64
	Sigma    float64
	Edges    int
	EpsPrime float64 // the paper's ε′ metric
	MaxOver  float64 // worst-case |M(v)|/b(v)
}

// ViolationResult is the Figure 4 panel for one dataset.
type ViolationResult struct {
	Dataset string
	Rows    []ViolationRow
	// MR aggregates the engine statistics of every MapReduce job the
	// panel ran.
	MR mapreduce.Stats
}

// Violations reproduces Figure 4: StackMR capacity violations as a
// function of the number of edges, for combinations of ε and α. The
// paper finds violations between ~0 and 6%, growing with more edges
// (lower σ) and larger capacities (higher α), and near zero on
// yahoo-answers.
func Violations(ctx context.Context, cfg Config, corpusName string, epses, alphas []float64) (*ViolationResult, error) {
	var p *prepared
	for _, c := range cfg.Datasets() {
		if c.Name == corpusName {
			p = prepare(c)
			break
		}
	}
	if p == nil {
		return nil, fmt.Errorf("experiments: unknown dataset %q", corpusName)
	}
	res := &ViolationResult{Dataset: corpusName}
	for _, eps := range epses {
		for _, alpha := range alphas {
			for _, sigma := range SigmaGrid(corpusName) {
				g, err := p.at(sigma, alpha)
				if err != nil {
					return nil, err
				}
				run := cfg
				run.Eps = eps
				sm, err := runStack(ctx, g, run, core.MarkRandom)
				if err != nil {
					return nil, fmt.Errorf("experiments: violations ε=%v α=%v σ=%v: %w",
						eps, alpha, sigma, err)
				}
				res.Rows = append(res.Rows, ViolationRow{
					Eps: eps, Alpha: alpha, Sigma: sigma,
					Edges:    g.NumEdges(),
					EpsPrime: sm.Matching.Violation(),
					MaxOver:  sm.Matching.MaxViolationFactor(),
				})
				res.MR.Add(&sm.Shuffle)
			}
		}
	}
	return res, nil
}

// MaxEpsPrime returns the worst ε′ across the panel.
func (r *ViolationResult) MaxEpsPrime() float64 {
	worst := 0.0
	for _, row := range r.Rows {
		if row.EpsPrime > worst {
			worst = row.EpsPrime
		}
	}
	return worst
}

// Render formats the panel.
func (r *ViolationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: StackMR capacity violations eps' vs #edges\n", r.Dataset)
	fmt.Fprintf(&b, "%6s %6s %8s %9s | %10s %8s\n", "eps", "alpha", "sigma", "edges", "eps'", "max b-stretch")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%6.2f %6.2f %8.3g %9d | %10.5f %8.3f\n",
			row.Eps, row.Alpha, row.Sigma, row.Edges, row.EpsPrime, row.MaxOver)
	}
	fmt.Fprintf(&b, "worst eps' on %s: %.5f\n", r.Dataset, r.MaxEpsPrime())
	return b.String()
}
