package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/mapreduce"
)

// ScalabilityRow is one point of the scalability study: graph size vs
// MapReduce rounds for both algorithm families. The paper's Section 6
// concludes that "the performance of StackMR is almost unaffected by
// increasing the number of edges" while GreedyMR's round count grows;
// this experiment isolates that claim on synthetic graphs whose size
// grows geometrically.
type ScalabilityRow struct {
	Items    int
	Edges    int
	GreedyMR struct {
		Rounds int
		Value  float64
	}
	StackMR struct {
		Rounds int
		Value  float64
	}
}

// ScalabilityResult is the full sweep.
type ScalabilityResult struct {
	Rows []ScalabilityRow
	// MR aggregates the engine statistics of every MapReduce job the
	// sweep ran.
	MR mapreduce.Stats
}

// Scalability runs both algorithms on synthetic graphs of geometrically
// increasing size (factor 2 per step, `steps` steps from `baseItems`).
func Scalability(ctx context.Context, cfg Config, baseItems, steps int) (*ScalabilityResult, error) {
	res := &ScalabilityResult{}
	items := baseItems
	for s := 0; s < steps; s++ {
		g := dataset.Synthetic(dataset.SyntheticConfig{
			NumItems:      items,
			NumConsumers:  items / 5,
			MeanDegree:    10,
			DegreeAlpha:   1.4,
			WeightScale:   1,
			CapacityAlpha: 1.2,
			CapacityMax:   60,
			Seed:          cfg.Seed + int64(s),
		})
		var row ScalabilityRow
		row.Items = items
		row.Edges = g.NumEdges()

		gm, err := core.GreedyMR(ctx, g, core.GreedyMROptions{MR: cfg.MR})
		if err != nil {
			return nil, fmt.Errorf("experiments: scalability greedymr n=%d: %w", items, err)
		}
		row.GreedyMR.Rounds = gm.Rounds
		row.GreedyMR.Value = gm.Matching.Value()
		res.MR.Add(&gm.Shuffle)

		sm, err := runStack(ctx, g, cfg, core.MarkRandom)
		if err != nil {
			return nil, fmt.Errorf("experiments: scalability stackmr n=%d: %w", items, err)
		}
		row.StackMR.Rounds = sm.Rounds
		row.StackMR.Value = sm.Matching.Value()
		res.MR.Add(&sm.Shuffle)

		res.Rows = append(res.Rows, row)
		items *= 2
	}
	return res, nil
}

// RoundGrowth returns (last/first) round ratios for both algorithms; the
// paper's claim translates to the StackMR ratio staying near 1 while the
// GreedyMR ratio grows with the size sweep.
func (r *ScalabilityResult) RoundGrowth() (greedy, stack float64) {
	if len(r.Rows) < 2 {
		return 1, 1
	}
	first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
	if first.GreedyMR.Rounds > 0 {
		greedy = float64(last.GreedyMR.Rounds) / float64(first.GreedyMR.Rounds)
	}
	if first.StackMR.Rounds > 0 {
		stack = float64(last.StackMR.Rounds) / float64(first.StackMR.Rounds)
	}
	return greedy, stack
}

// Render formats the sweep.
func (r *ScalabilityResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scalability: MapReduce rounds vs graph size (synthetic)\n")
	fmt.Fprintf(&b, "%8s %9s | %8s %12s | %8s %12s\n",
		"items", "edges", "it(G)", "value(G)", "it(S)", "value(S)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%8d %9d | %8d %12.1f | %8d %12.1f\n",
			row.Items, row.Edges,
			row.GreedyMR.Rounds, row.GreedyMR.Value,
			row.StackMR.Rounds, row.StackMR.Value)
	}
	g, s := r.RoundGrowth()
	fmt.Fprintf(&b, "round growth over sweep: GreedyMR x%.2f, StackMR x%.2f\n", g, s)
	return b.String()
}
