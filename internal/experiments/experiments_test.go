package experiments

import (
	"context"
	"strings"
	"testing"

	"repro/internal/graph"
)

func quickCfg() Config {
	c := Quick()
	c.Scale = 0.05
	return c
}

func TestTable1(t *testing.T) {
	rows := Table1(quickCfg())
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	names := map[string]bool{}
	for _, r := range rows {
		names[r.Dataset] = true
		if r.NumItems <= 0 || r.NumConsumers <= 0 || r.NumEdges <= 0 {
			t.Errorf("degenerate row %+v", r)
		}
	}
	for _, want := range []string{"flickr-small", "flickr-large", "yahoo-answers"} {
		if !names[want] {
			t.Errorf("missing dataset %s", want)
		}
	}
	if out := RenderTable1(rows); !strings.Contains(out, "flickr-small") {
		t.Error("render missing dataset name")
	}
}

func TestQualityExperimentShape(t *testing.T) {
	ctx := context.Background()
	res, err := Quality(ctx, quickCfg(), "flickr-small")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(SigmaGrid("flickr-small")) {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	prevEdges := -1
	for _, row := range res.Rows {
		// Lowering sigma adds edges.
		if prevEdges >= 0 && row.Edges < prevEdges {
			t.Errorf("edges decreased along sweep: %d -> %d", prevEdges, row.Edges)
		}
		prevEdges = row.Edges
		if row.GreedyMR <= 0 || row.StackMR <= 0 || row.StackGreedy <= 0 {
			t.Errorf("zero matching value in row %+v", row)
		}
		// The paper's headline: GreedyMR consistently beats the stack
		// algorithms on value.
		if row.GreedyMR < row.StackMR {
			t.Errorf("sigma=%v: GreedyMR %v below StackMR %v", row.Sigma, row.GreedyMR, row.StackMR)
		}
		// Simulated cluster time must be populated (at least the
		// per-round overhead times the round count).
		if row.GreedyMRTime <= 0 || row.StackMRTime <= 0 || row.StackGreedyTime <= 0 {
			t.Errorf("sigma=%v: missing simulated times in %+v", row.Sigma, row)
		}
	}
	if adv := res.GreedyMRAdvantage(); adv <= 0 {
		t.Errorf("GreedyMR advantage %v not positive", adv)
	}
	if out := res.Render(); !strings.Contains(out, "flickr-small") {
		t.Error("render missing dataset")
	}
}

func TestQualityUnknownDataset(t *testing.T) {
	if _, err := Quality(context.Background(), quickCfg(), "nope"); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestViolationsExperiment(t *testing.T) {
	ctx := context.Background()
	res, err := Violations(ctx, quickCfg(), "flickr-small", []float64{1}, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	wantRows := 2 * len(SigmaGrid("flickr-small"))
	if len(res.Rows) != wantRows {
		t.Fatalf("got %d rows, want %d", len(res.Rows), wantRows)
	}
	for _, row := range res.Rows {
		if row.EpsPrime < 0 {
			t.Errorf("negative eps': %+v", row)
		}
		// Violation factor bounded by (1+eps) as per Theorem 1.
		if row.MaxOver > 1+row.Eps+1e-9 {
			t.Errorf("violation factor %v beyond 1+eps: %+v", row.MaxOver, row)
		}
	}
	if res.MaxEpsPrime() > 0.10 {
		t.Errorf("eps' = %v far above the paper's <=6%% range", res.MaxEpsPrime())
	}
	if out := res.Render(); !strings.Contains(out, "eps'") {
		t.Error("render missing header")
	}
}

func TestConvergenceExperiment(t *testing.T) {
	ctx := context.Background()
	res, err := Convergence(ctx, quickCfg(), "flickr-small")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds <= 0 || len(res.Trace) != res.Rounds {
		t.Fatalf("rounds=%d trace=%d", res.Rounds, len(res.Trace))
	}
	// Trace is monotone and ends at 1.
	prev := 0.0
	for _, f := range res.Trace {
		if f < prev-1e-12 {
			t.Error("trace not monotone")
		}
		prev = f
	}
	if prev < 1-1e-9 {
		t.Errorf("trace ends at %v, want 1", prev)
	}
	if res.RoundsTo95 <= 0 || res.RoundsTo95 > res.Rounds {
		t.Errorf("RoundsTo95 = %d of %d", res.RoundsTo95, res.Rounds)
	}
	// The any-time property: 95% is reached well before the end (the
	// paper sees 29-45% of the rounds).
	if f := res.FractionTo95(); f > 0.9 {
		t.Errorf("95%% reached only at %.0f%% of rounds", 100*f)
	}
	if out := res.Render(); !strings.Contains(out, "95%") {
		t.Error("render missing 95% line")
	}
}

func TestSimilarityDistribution(t *testing.T) {
	cfg := quickCfg()
	for _, c := range cfg.Datasets() {
		res := SimilarityDistribution(c)
		if res.Hist.Total() == 0 {
			t.Errorf("%s: empty similarity histogram", c.Name)
		}
		if res.Summary.Min <= 0 {
			t.Errorf("%s: non-positive similarity recorded", c.Name)
		}
		if out := res.Render(); !strings.Contains(out, "similarity") {
			t.Error("render missing label")
		}
	}
}

func TestCapacityDistribution(t *testing.T) {
	cfg := quickCfg()
	c := cfg.Datasets()[0]
	for _, side := range []graph.Side{graph.ItemSide, graph.ConsumerSide} {
		res, err := CapacityDistribution(c, 1, side)
		if err != nil {
			t.Fatal(err)
		}
		if res.Hist.Total() == 0 {
			t.Errorf("side %v: empty capacity histogram", side)
		}
		if res.Summary.Min < 1 {
			t.Errorf("side %v: capacity below 1", side)
		}
	}
}

func TestSigmaGrids(t *testing.T) {
	for _, name := range []string{"flickr-small", "flickr-large", "yahoo-answers"} {
		grid := SigmaGrid(name)
		if len(grid) < 3 {
			t.Errorf("%s: grid too small", name)
		}
		for i := 1; i < len(grid); i++ {
			if grid[i] >= grid[i-1] {
				t.Errorf("%s: grid not strictly decreasing", name)
			}
		}
	}
}

func TestScalabilityExperiment(t *testing.T) {
	ctx := context.Background()
	res, err := Scalability(ctx, quickCfg(), 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for i, row := range res.Rows {
		if row.Edges <= 0 || row.GreedyMR.Rounds <= 0 || row.StackMR.Rounds <= 0 {
			t.Errorf("row %d degenerate: %+v", i, row)
		}
		if i > 0 && row.Edges <= res.Rows[i-1].Edges {
			t.Errorf("edges not growing at row %d", i)
		}
	}
	g, s := res.RoundGrowth()
	if g <= 0 || s <= 0 {
		t.Errorf("growth ratios %v %v", g, s)
	}
	if out := res.Render(); !strings.Contains(out, "round growth") {
		t.Error("render missing growth line")
	}
}

func TestScalabilityRoundGrowthDegenerate(t *testing.T) {
	r := &ScalabilityResult{}
	if g, s := r.RoundGrowth(); g != 1 || s != 1 {
		t.Error("empty result growth should be 1,1")
	}
}

func TestConfigScaled(t *testing.T) {
	c := Defaults()
	if c.scaled(1000) != 1000 {
		t.Error("scale 1 must be identity")
	}
	c.Scale = 0.1
	if got := c.scaled(1000); got != 100 {
		t.Errorf("scaled(1000) = %d", got)
	}
	if got := c.scaled(50); got != 30 {
		t.Errorf("floor not applied: %d", got)
	}
}
