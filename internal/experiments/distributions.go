package experiments

import (
	"fmt"
	"strings"

	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/stats"
)

// Table1Row is one row of Table 1: dataset characteristics.
type Table1Row struct {
	Dataset      string
	NumItems     int
	NumConsumers int
	NumEdges     int // item-user pairs with non-zero similarity
}

// Table1 reproduces Table 1 over the generated corpora.
func Table1(cfg Config) []Table1Row {
	var rows []Table1Row
	for _, c := range cfg.Datasets() {
		s := c.TableStats(0)
		rows = append(rows, Table1Row{
			Dataset:      s.Name,
			NumItems:     s.NumItems,
			NumConsumers: s.NumConsumers,
			NumEdges:     s.NumEdges,
		})
	}
	return rows
}

// RenderTable1 formats Table 1.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: dataset characteristics\n")
	fmt.Fprintf(&b, "%-14s %10s %10s %12s\n", "dataset", "|T|", "|C|", "|E|")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %10d %10d %12d\n", r.Dataset, r.NumItems, r.NumConsumers, r.NumEdges)
	}
	return b.String()
}

// DistributionResult is one histogram panel of Figures 6-7.
type DistributionResult struct {
	Dataset string
	What    string // "similarity" or "capacity(item)" / "capacity(consumer)"
	Hist    *stats.LogHistogram
	Summary stats.Summary
}

// SimilarityDistribution reproduces Figure 6 for one corpus: the
// distribution of edge similarities over all positive pairs.
func SimilarityDistribution(c *dataset.Corpus) *DistributionResult {
	g := c.BuildGraph(0)
	ws := make([]float64, 0, g.NumEdges())
	for _, e := range g.Edges() {
		ws = append(ws, e.Weight)
	}
	lo := 1e-4
	if wmin, _ := g.WeightRange(); wmin > lo {
		lo = wmin
	}
	h := stats.NewLogHistogram(lo, 1.6, 32)
	for _, w := range ws {
		h.Add(w)
	}
	return &DistributionResult{
		Dataset: c.Name,
		What:    "similarity",
		Hist:    h,
		Summary: stats.Summarize(ws),
	}
}

// CapacityDistribution reproduces Figure 7 for one corpus and side at
// the given α.
func CapacityDistribution(c *dataset.Corpus, alpha float64, side graph.Side) (*DistributionResult, error) {
	g := c.BuildGraph(0)
	if err := c.ApplyCapacities(g, alpha); err != nil {
		return nil, err
	}
	var caps []float64
	for v := 0; v < g.NumNodes(); v++ {
		if g.SideOf(graph.NodeID(v)) == side {
			caps = append(caps, g.Capacity(graph.NodeID(v)))
		}
	}
	h := stats.NewLogHistogram(1, 1.6, 24)
	for _, b := range caps {
		h.Add(b)
	}
	return &DistributionResult{
		Dataset: c.Name,
		What:    "capacity(" + side.String() + ")",
		Hist:    h,
		Summary: stats.Summarize(caps),
	}, nil
}

// Render formats one histogram panel with log-scaled bars.
func (r *DistributionResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: distribution of %s (n=%d, mean=%.3g, p99=%.3g, gini=%.2f)\n",
		r.Dataset, r.What, r.Summary.Count, r.Summary.Mean, r.Summary.P99,
		r.Summary.GiniCoefficent)
	maxCount := 0
	for _, c := range r.Hist.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	for i, c := range r.Hist.Counts {
		if c == 0 {
			continue
		}
		bar := int(40 * float64(c) / float64(maxCount))
		fmt.Fprintf(&b, "  [%8.3g, %8.3g) %9d %s\n",
			r.Hist.BinLow(i), r.Hist.BinLow(i+1), c, strings.Repeat("#", bar))
	}
	return b.String()
}
