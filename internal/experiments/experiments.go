// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6):
//
//	Table 1  — dataset characteristics (Table1)
//	Figures 1-3 — matching value and MapReduce iterations as a function
//	           of the number of edges, per dataset (Quality)
//	Figure 4 — capacity violations of StackMR (Violations)
//	Figure 5 — GreedyMR value as a function of the iteration
//	           (Convergence)
//	Figure 6 — distribution of edge similarities (SimilarityDistribution)
//	Figure 7 — distribution of capacities (CapacityDistribution)
//
// Each experiment returns plain row structs that the Render* helpers
// format as aligned text tables; cmd/experiments drives them all and
// EXPERIMENTS.md records the measured-vs-paper comparison.
package experiments

import (
	"context"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/mapreduce"
	"repro/internal/stats"
)

// Config bundles the knobs shared by all experiments.
type Config struct {
	// MR configures every MapReduce job.
	MR mapreduce.Config
	// Alpha is the consumer-activity multiplier (capacities
	// b(u) = α·n(u)); the paper sweeps it, 1 is the base setting.
	Alpha float64
	// Eps is the stack slackness parameter; the paper's experiments use
	// 1 (with 0.25 appearing in the violation study).
	Eps float64
	// Seed drives all randomized algorithms.
	Seed int64
	// Scale in (0, 1] shrinks the generated corpora for quick runs;
	// 1 reproduces the DESIGN.md sizes.
	Scale float64
}

// Defaults returns the full-size configuration used by cmd/experiments.
func Defaults() Config {
	return Config{Alpha: 1, Eps: 1, Seed: 42, Scale: 1}
}

// Quick returns a configuration scaled down for tests and -short
// benchmarks.
func Quick() Config {
	c := Defaults()
	c.Scale = 0.12
	return c
}

// scaleCorpusSizes applies cfg.Scale to a part size, keeping at least a
// workable floor.
func (c Config) scaled(n int) int {
	if c.Scale <= 0 || c.Scale >= 1 {
		return n
	}
	s := int(math.Round(float64(n) * c.Scale))
	if s < 30 {
		s = 30
	}
	return s
}

// Datasets generates the three corpora at the configured scale.
func (c Config) Datasets() []*dataset.Corpus {
	fs := dataset.FlickrSmallConfig()
	fs.NumItems, fs.NumConsumers = c.scaled(fs.NumItems), c.scaled(fs.NumConsumers)
	fl := dataset.FlickrLargeConfig()
	fl.NumItems, fl.NumConsumers = c.scaled(fl.NumItems), c.scaled(fl.NumConsumers)
	ya := dataset.AnswersScaledConfig()
	ya.NumItems, ya.NumConsumers = c.scaled(ya.NumItems), c.scaled(ya.NumConsumers)
	return []*dataset.Corpus{
		dataset.Flickr("flickr-small", fs),
		dataset.Flickr("flickr-large", fl),
		dataset.Answers("yahoo-answers", ya),
	}
}

// SigmaGrid returns the similarity-threshold sweep for a dataset: the
// paper varies σ to control the number of candidate edges. Flickr
// similarities are tag-overlap counts, yahoo-answers similarities are
// cosines, so the grids differ.
func SigmaGrid(corpusName string) []float64 {
	if corpusName == "yahoo-answers" {
		return []float64{0.30, 0.22, 0.16, 0.11, 0.08}
	}
	return []float64{8, 6, 4, 3, 2}
}

// prepared is a corpus with its full candidate graph materialized once;
// σ sweeps reuse it through FilterEdges.
type prepared struct {
	corpus *dataset.Corpus
	full   *graph.Bipartite
}

func prepare(c *dataset.Corpus) *prepared {
	return &prepared{corpus: c, full: c.BuildGraph(0)}
}

// at returns the candidate graph at threshold sigma with capacities for
// the given α applied.
func (p *prepared) at(sigma, alpha float64) (*graph.Bipartite, error) {
	g := p.full.FilterEdges(sigma)
	if err := p.corpus.ApplyCapacities(g, alpha); err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", p.corpus.Name, err)
	}
	return g, nil
}

// runStack dispatches to StackMR or StackGreedyMR.
func runStack(ctx context.Context, g *graph.Bipartite, cfg Config, strategy core.MarkingStrategy) (*core.Result, error) {
	return core.StackMR(ctx, g, core.StackOptions{
		MR:       cfg.MR,
		Eps:      cfg.Eps,
		Seed:     cfg.Seed,
		Strategy: strategy,
	})
}

// stat helper: mean of a float slice (0 when empty).
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return stats.Summarize(xs).Mean
}
