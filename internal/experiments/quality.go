package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/mapreduce"
)

// QualityRow is one point of Figures 1-3: all matching algorithms run on
// the same candidate graph, reporting b-matching value and MapReduce
// iteration counts.
type QualityRow struct {
	Sigma float64
	Edges int
	// Values.
	GreedyMR    float64
	StackMR     float64
	StackGreedy float64
	// MapReduce iterations.
	GreedyMRRounds    int
	StackMRRounds     int
	StackGreedyRounds int
	// Simulated cluster wall-clock in seconds (the in-memory engine's
	// per-round statistics fed through mapreduce.DefaultCluster; the
	// per-round scheduling overhead dominates, which is the paper's
	// argument for minimizing rounds).
	GreedyMRTime    float64
	StackMRTime     float64
	StackGreedyTime float64
	// Violations (the stack algorithms may exceed capacities).
	StackMRViolation     float64
	StackGreedyViolation float64
}

// QualityResult is a full Figure 1/2/3 panel for one dataset.
type QualityResult struct {
	Dataset string
	Alpha   float64
	Eps     float64
	Rows    []QualityRow
	// MR aggregates the engine statistics of every MapReduce job the
	// panel ran (phase wall clocks, shuffle routing and spill volumes).
	MR mapreduce.Stats
}

// Quality reproduces one panel of Figures 1-3: sweep σ (lowering it adds
// edges) and run GreedyMR, StackMR and StackGreedyMR on each candidate
// graph.
func Quality(ctx context.Context, cfg Config, corpusName string) (*QualityResult, error) {
	var p *prepared
	for _, c := range cfg.Datasets() {
		if c.Name == corpusName {
			p = prepare(c)
			break
		}
	}
	if p == nil {
		return nil, fmt.Errorf("experiments: unknown dataset %q", corpusName)
	}
	res := &QualityResult{Dataset: corpusName, Alpha: cfg.Alpha, Eps: cfg.Eps}
	cluster := mapreduce.DefaultCluster()
	for _, sigma := range SigmaGrid(corpusName) {
		g, err := p.at(sigma, cfg.Alpha)
		if err != nil {
			return nil, err
		}
		row := QualityRow{Sigma: sigma, Edges: g.NumEdges()}

		gm, err := core.GreedyMR(ctx, g, core.GreedyMROptions{MR: cfg.MR})
		if err != nil {
			return nil, fmt.Errorf("experiments: greedymr σ=%v: %w", sigma, err)
		}
		row.GreedyMR = gm.Matching.Value()
		row.GreedyMRRounds = gm.Rounds
		row.GreedyMRTime = cluster.EstimateTrace(gm.RoundStats)
		res.MR.Add(&gm.Shuffle)

		sm, err := runStack(ctx, g, cfg, core.MarkRandom)
		if err != nil {
			return nil, fmt.Errorf("experiments: stackmr σ=%v: %w", sigma, err)
		}
		row.StackMR = sm.Matching.Value()
		row.StackMRRounds = sm.Rounds
		row.StackMRTime = cluster.EstimateTrace(sm.RoundStats)
		row.StackMRViolation = sm.Matching.Violation()
		res.MR.Add(&sm.Shuffle)

		sg, err := runStack(ctx, g, cfg, core.MarkHeaviest)
		if err != nil {
			return nil, fmt.Errorf("experiments: stackgreedymr σ=%v: %w", sigma, err)
		}
		row.StackGreedy = sg.Matching.Value()
		row.StackGreedyRounds = sg.Rounds
		row.StackGreedyTime = cluster.EstimateTrace(sg.RoundStats)
		row.StackGreedyViolation = sg.Matching.Violation()
		res.MR.Add(&sg.Shuffle)

		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// GreedyMRAdvantage returns the mean relative value advantage of
// GreedyMR over StackMR across the sweep (the paper reports 31% on
// flickr-large, 11% on flickr-small, 14% on yahoo-answers).
func (r *QualityResult) GreedyMRAdvantage() float64 {
	var rel []float64
	for _, row := range r.Rows {
		if row.StackMR > 0 {
			rel = append(rel, row.GreedyMR/row.StackMR-1)
		}
	}
	return mean(rel)
}

// Render formats the panel as an aligned text table.
func (r *QualityResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (alpha=%g, eps=%g): matching value and MR iterations vs #edges\n",
		r.Dataset, r.Alpha, r.Eps)
	fmt.Fprintf(&b, "%8s %9s | %12s %12s %12s | %7s %7s %7s | %8s %8s %8s\n",
		"sigma", "edges", "GreedyMR", "StackMR", "StackGrMR",
		"it(G)", "it(S)", "it(SG)", "t(G)s", "t(S)s", "t(SG)s")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%8.3g %9d | %12.1f %12.1f %12.1f | %7d %7d %7d | %8.0f %8.0f %8.0f\n",
			row.Sigma, row.Edges, row.GreedyMR, row.StackMR, row.StackGreedy,
			row.GreedyMRRounds, row.StackMRRounds, row.StackGreedyRounds,
			row.GreedyMRTime, row.StackMRTime, row.StackGreedyTime)
	}
	fmt.Fprintf(&b, "GreedyMR value advantage over StackMR: %+.1f%%\n", 100*r.GreedyMRAdvantage())
	return b.String()
}
