package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/mapreduce"
)

// ConvergenceResult is one curve of Figure 5: the value of GreedyMR's
// feasible solution after each MapReduce iteration, as a fraction of its
// final value.
type ConvergenceResult struct {
	Dataset string
	Sigma   float64
	Edges   int
	Rounds  int
	// Trace holds the fraction-of-final value after each round.
	Trace []float64
	// RoundsTo95 is the first round reaching 95% of the final value;
	// the paper reports GreedyMR getting there within 28.91%, 44.18%
	// and 29.35% of its rounds on flickr-small, flickr-large and
	// yahoo-answers respectively.
	RoundsTo95 int
	// MR aggregates the engine statistics of the GreedyMR run.
	MR mapreduce.Stats
}

// FractionTo95 returns RoundsTo95 / Rounds.
func (r *ConvergenceResult) FractionTo95() float64 {
	if r.Rounds == 0 {
		return 0
	}
	return float64(r.RoundsTo95) / float64(r.Rounds)
}

// Convergence reproduces Figure 5 for one dataset at a mid-sweep σ.
func Convergence(ctx context.Context, cfg Config, corpusName string) (*ConvergenceResult, error) {
	var p *prepared
	for _, c := range cfg.Datasets() {
		if c.Name == corpusName {
			p = prepare(c)
			break
		}
	}
	if p == nil {
		return nil, fmt.Errorf("experiments: unknown dataset %q", corpusName)
	}
	grid := SigmaGrid(corpusName)
	sigma := grid[len(grid)/2]
	g, err := p.at(sigma, cfg.Alpha)
	if err != nil {
		return nil, err
	}
	gm, err := core.GreedyMR(ctx, g, core.GreedyMROptions{MR: cfg.MR})
	if err != nil {
		return nil, fmt.Errorf("experiments: convergence: %w", err)
	}
	return &ConvergenceResult{
		Dataset:    corpusName,
		Sigma:      sigma,
		Edges:      g.NumEdges(),
		Rounds:     gm.Rounds,
		Trace:      gm.FractionOfFinal(),
		RoundsTo95: gm.IterationsToFraction(0.95),
		MR:         gm.Shuffle,
	}, nil
}

// Render formats the curve as a sparkline-style table (every few rounds).
func (r *ConvergenceResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (sigma=%g, %d edges): GreedyMR fraction of final value per iteration\n",
		r.Dataset, r.Sigma, r.Edges)
	step := len(r.Trace)/12 + 1
	for i := 0; i < len(r.Trace); i += step {
		fmt.Fprintf(&b, "  round %3d: %6.2f%% %s\n", i+1, 100*r.Trace[i],
			strings.Repeat("#", int(40*r.Trace[i])))
	}
	if len(r.Trace) > 0 && (len(r.Trace)-1)%step != 0 {
		last := len(r.Trace) - 1
		fmt.Fprintf(&b, "  round %3d: %6.2f%% %s\n", last+1, 100*r.Trace[last],
			strings.Repeat("#", int(40*r.Trace[last])))
	}
	fmt.Fprintf(&b, "reaches 95%% of final value at round %d of %d (%.1f%% of iterations)\n",
		r.RoundsTo95, r.Rounds, 100*r.FractionTo95())
	return b.String()
}
