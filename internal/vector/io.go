package vector

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The corpus text format serializes collections of sparse vectors, one
// per line, so generated corpora can move between cmd/datagen and
// cmd/simjoin without regeneration:
//
//	# comments and blank lines are ignored
//	v <term>:<weight> <term>:<weight> ...
//
// An empty vector is the line "v" alone. Term ids are non-negative
// integers; weights positive floats.

// WriteCorpus serializes vectors in the corpus text format.
func WriteCorpus(w io.Writer, docs []Sparse) error {
	bw := bufio.NewWriter(w)
	for _, d := range docs {
		bw.WriteByte('v')
		for _, e := range d.Entries() {
			fmt.Fprintf(bw, " %d:%g", e.Term, e.Weight)
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// ReadCorpus parses vectors in the corpus text format.
func ReadCorpus(r io.Reader) ([]Sparse, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var docs []Sparse
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] != "v" {
			return nil, fmt.Errorf("vector: line %d: expected 'v' record, got %q", lineNo, fields[0])
		}
		entries := make([]Entry, 0, len(fields)-1)
		for _, f := range fields[1:] {
			colon := strings.IndexByte(f, ':')
			if colon <= 0 {
				return nil, fmt.Errorf("vector: line %d: malformed entry %q", lineNo, f)
			}
			term, err := strconv.Atoi(f[:colon])
			if err != nil || term < 0 {
				return nil, fmt.Errorf("vector: line %d: bad term in %q", lineNo, f)
			}
			weight, err := strconv.ParseFloat(f[colon+1:], 64)
			if err != nil || weight <= 0 {
				return nil, fmt.Errorf("vector: line %d: bad weight in %q", lineNo, f)
			}
			entries = append(entries, Entry{Term: TermID(term), Weight: weight})
		}
		docs = append(docs, FromEntries(entries))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("vector: read corpus: %w", err)
	}
	return docs, nil
}
