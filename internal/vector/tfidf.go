package vector

import "math"

// TFIDF reweights a corpus of raw term-count vectors with tf·idf scores,
// the weighting the paper applies to the Yahoo! Answers text (Section 6:
// "stem words, and apply tf·idf weighting").
//
// The weight of term t in document d is tf(t,d) · idf(t) with
// tf(t,d) the raw count and idf(t) = ln(N / df(t)), where N is the corpus
// size and df(t) the number of documents containing t. Terms appearing in
// every document get idf 0 and vanish, which is the desired behaviour for
// stop-word-like terms that survive the stop list.
func TFIDF(docs []Sparse) []Sparse {
	df := DocumentFrequencies(docs)
	n := float64(len(docs))
	out := make([]Sparse, len(docs))
	for i, d := range docs {
		entries := make([]Entry, 0, d.Len())
		for _, e := range d.Entries() {
			idf := math.Log(n / float64(df[e.Term]))
			if w := e.Weight * idf; w > 0 {
				entries = append(entries, Entry{Term: e.Term, Weight: w})
			}
		}
		out[i] = FromEntries(entries)
	}
	return out
}

// DocumentFrequencies counts, for every term, the number of documents in
// which it appears.
func DocumentFrequencies(docs []Sparse) map[TermID]int {
	df := make(map[TermID]int)
	for _, d := range docs {
		for _, e := range d.Entries() {
			df[e.Term]++
		}
	}
	return df
}

// MaxWeights returns, for every term occurring in the corpus, the largest
// weight it takes in any document. The similarity join uses these bounds
// to size prefixes.
func MaxWeights(docs []Sparse) map[TermID]float64 {
	mw := make(map[TermID]float64)
	for _, d := range docs {
		for _, e := range d.Entries() {
			if e.Weight > mw[e.Term] {
				mw[e.Term] = e.Weight
			}
		}
	}
	return mw
}

// NormalizeAll returns the corpus with every vector scaled to unit norm.
func NormalizeAll(docs []Sparse) []Sparse {
	out := make([]Sparse, len(docs))
	for i, d := range docs {
		out[i] = d.Normalize()
	}
	return out
}
