package vector

import (
	"math/rand"
	"testing"
)

func randomVec(rng *rand.Rand, terms, vocab int) Sparse {
	b := NewBuilder()
	for i := 0; i < terms; i++ {
		b.Add(TermID(rng.Intn(vocab)), rng.Float64()+0.1)
	}
	return b.Vector()
}

func BenchmarkDot(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randomVec(rng, 50, 2000)
	y := randomVec(rng, 200, 2000)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += x.Dot(y)
	}
	_ = sink
}

func BenchmarkFromEntries(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	entries := make([]Entry, 300)
	for i := range entries {
		entries[i] = Entry{Term: TermID(rng.Intn(100)), Weight: rng.Float64() + 0.1}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FromEntries(entries)
	}
}

func BenchmarkTFIDF(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	docs := make([]Sparse, 500)
	for i := range docs {
		docs[i] = randomVec(rng, 40, 5000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TFIDF(docs)
	}
}

func BenchmarkNormalize(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	v := randomVec(rng, 200, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Normalize()
	}
}
