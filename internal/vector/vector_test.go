package vector

import (
	"math"
	"testing"
	"testing/quick"
)

func vec(pairs ...float64) Sparse {
	if len(pairs)%2 != 0 {
		panic("vec: odd argument count")
	}
	entries := make([]Entry, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		entries = append(entries, Entry{Term: TermID(pairs[i]), Weight: pairs[i+1]})
	}
	return FromEntries(entries)
}

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestFromEntriesSortsAndMerges(t *testing.T) {
	v := FromEntries([]Entry{{5, 1}, {2, 3}, {5, 2}, {9, 0}})
	if v.Len() != 2 {
		t.Fatalf("Len = %d, want 2", v.Len())
	}
	if v.At(0).Term != 2 || v.At(0).Weight != 3 {
		t.Errorf("At(0) = %+v", v.At(0))
	}
	if v.At(1).Term != 5 || v.At(1).Weight != 3 {
		t.Errorf("At(1) = %+v (duplicates not merged)", v.At(1))
	}
}

func TestFromEntriesRejectsBadWeights(t *testing.T) {
	for _, w := range []float64{-1, math.NaN(), math.Inf(1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("weight %v: expected panic", w)
				}
			}()
			FromEntries([]Entry{{1, w}})
		}()
	}
}

func TestWeightLookup(t *testing.T) {
	v := vec(1, 0.5, 7, 2.0, 100, 1.5)
	if !almostEq(v.Weight(7), 2.0) {
		t.Errorf("Weight(7) = %v", v.Weight(7))
	}
	if v.Weight(8) != 0 {
		t.Errorf("Weight(8) = %v, want 0", v.Weight(8))
	}
}

func TestDot(t *testing.T) {
	a := vec(1, 2, 3, 1, 5, 4)
	b := vec(2, 7, 3, 3, 5, 0.5)
	// common terms: 3 (1*3) and 5 (4*0.5) = 5
	if got := a.Dot(b); !almostEq(got, 5) {
		t.Errorf("Dot = %v, want 5", got)
	}
	if got := b.Dot(a); !almostEq(got, 5) {
		t.Errorf("Dot not symmetric: %v", got)
	}
	if got := a.Dot(Sparse{}); got != 0 {
		t.Errorf("Dot with zero = %v", got)
	}
}

func TestDotMatchesNaive(t *testing.T) {
	prop := func(aw, bw [8]uint8) bool {
		var ea, eb []Entry
		for i, w := range aw {
			if w%3 != 0 {
				ea = append(ea, Entry{TermID(i), float64(w)})
			}
		}
		for i, w := range bw {
			if w%2 != 0 {
				eb = append(eb, Entry{TermID(i), float64(w)})
			}
		}
		a, b := FromEntries(ea), FromEntries(eb)
		var naive float64
		for i := 0; i < 8; i++ {
			naive += a.Weight(TermID(i)) * b.Weight(TermID(i))
		}
		return almostEq(a.Dot(b), naive)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNormAndSum(t *testing.T) {
	v := vec(1, 3, 2, 4)
	if !almostEq(v.Norm(), 5) {
		t.Errorf("Norm = %v, want 5", v.Norm())
	}
	if !almostEq(v.Sum(), 7) {
		t.Errorf("Sum = %v, want 7", v.Sum())
	}
	if !almostEq(v.MaxWeight(), 4) {
		t.Errorf("MaxWeight = %v, want 4", v.MaxWeight())
	}
	if (Sparse{}).MaxWeight() != 0 {
		t.Error("empty MaxWeight != 0")
	}
}

func TestCosine(t *testing.T) {
	a := vec(1, 1, 2, 0.0001) // nearly axis-aligned
	if got := a.Cosine(a); !almostEq(got, 1) {
		t.Errorf("Cosine(v,v) = %v, want 1", got)
	}
	x, y := vec(1, 1), vec(2, 1)
	if got := x.Cosine(y); got != 0 {
		t.Errorf("orthogonal Cosine = %v, want 0", got)
	}
	if got := x.Cosine(Sparse{}); got != 0 {
		t.Errorf("Cosine with zero = %v, want 0", got)
	}
}

func TestNormalize(t *testing.T) {
	v := vec(1, 3, 2, 4)
	n := v.Normalize()
	if !almostEq(n.Norm(), 1) {
		t.Errorf("normalized Norm = %v", n.Norm())
	}
	// Zero vector normalizes to itself.
	z := Sparse{}.Normalize()
	if !z.IsZero() {
		t.Error("zero Normalize not zero")
	}
}

func TestScale(t *testing.T) {
	v := vec(1, 2, 3, 4)
	s := v.Scale(0.5)
	if !almostEq(s.Weight(1), 1) || !almostEq(s.Weight(3), 2) {
		t.Errorf("Scale wrong: %v", s)
	}
	if !v.Scale(0).IsZero() {
		t.Error("Scale(0) not zero")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Scale(-1): expected panic")
			}
		}()
		v.Scale(-1)
	}()
}

func TestAdd(t *testing.T) {
	a := vec(1, 1, 3, 2)
	b := vec(2, 5, 3, 3)
	s := a.Add(b)
	if !almostEq(s.Weight(1), 1) || !almostEq(s.Weight(2), 5) || !almostEq(s.Weight(3), 5) {
		t.Errorf("Add = %v", s)
	}
	if got := a.Add(Sparse{}); got.Len() != a.Len() {
		t.Error("Add zero changed vector")
	}
}

func TestAddCommutative(t *testing.T) {
	prop := func(aw, bw [6]uint8) bool {
		var ea, eb []Entry
		for i, w := range aw {
			ea = append(ea, Entry{TermID(i * 2), float64(w)})
		}
		for i, w := range bw {
			eb = append(eb, Entry{TermID(i * 3), float64(w)})
		}
		a, b := FromEntries(ea), FromEntries(eb)
		ab, ba := a.Add(b), b.Add(a)
		if ab.Len() != ba.Len() {
			return false
		}
		for i := 0; i < ab.Len(); i++ {
			if ab.At(i) != ba.At(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCauchySchwarz(t *testing.T) {
	// |a·b| ≤ ‖a‖‖b‖ must hold for all sparse vectors.
	prop := func(aw, bw [10]uint8) bool {
		var ea, eb []Entry
		for i, w := range aw {
			ea = append(ea, Entry{TermID(i), float64(w % 17)})
		}
		for i, w := range bw {
			eb = append(eb, Entry{TermID(i + 3), float64(w % 13)})
		}
		a, b := FromEntries(ea), FromEntries(eb)
		return a.Dot(b) <= a.Norm()*b.Norm()+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	v := vec(1, 0.5)
	if got := v.String(); got != "{1:0.5}" {
		t.Errorf("String = %q", got)
	}
	if got := (Sparse{}).String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
}

func TestBuilder(t *testing.T) {
	b := NewBuilder()
	b.AddCount(3)
	b.AddCount(3)
	b.Add(1, 0.5)
	if b.Len() != 2 {
		t.Errorf("Builder.Len = %d", b.Len())
	}
	v := b.Vector()
	if !almostEq(v.Weight(3), 2) || !almostEq(v.Weight(1), 0.5) {
		t.Errorf("Builder vector = %v", v)
	}
	// Builder stays usable.
	b.AddCount(9)
	v2 := b.Vector()
	if v2.Len() != 3 {
		t.Errorf("Builder reuse failed: %v", v2)
	}
	if v.Len() != 2 {
		t.Error("earlier vector mutated by builder reuse")
	}
}

func TestTFIDF(t *testing.T) {
	// Term 1 appears in all 3 docs (idf=0, vanishes); term 2 in one doc.
	docs := []Sparse{
		vec(1, 2, 2, 1),
		vec(1, 1),
		vec(1, 3, 3, 2),
	}
	out := TFIDF(docs)
	if len(out) != 3 {
		t.Fatal("length changed")
	}
	if out[0].Weight(1) != 0 {
		t.Errorf("ubiquitous term kept weight %v", out[0].Weight(1))
	}
	wantT2 := 1 * math.Log(3.0/1.0)
	if !almostEq(out[0].Weight(2), wantT2) {
		t.Errorf("tfidf(term2) = %v, want %v", out[0].Weight(2), wantT2)
	}
	if out[1].Len() != 0 {
		t.Errorf("doc with only ubiquitous terms should be empty: %v", out[1])
	}
}

func TestDocumentFrequencies(t *testing.T) {
	docs := []Sparse{vec(1, 1, 2, 1), vec(2, 5)}
	df := DocumentFrequencies(docs)
	if df[1] != 1 || df[2] != 2 {
		t.Errorf("df = %v", df)
	}
}

func TestMaxWeights(t *testing.T) {
	docs := []Sparse{vec(1, 1, 2, 7), vec(2, 5, 3, 2)}
	mw := MaxWeights(docs)
	if mw[1] != 1 || mw[2] != 7 || mw[3] != 2 {
		t.Errorf("MaxWeights = %v", mw)
	}
}

func TestNormalizeAll(t *testing.T) {
	docs := []Sparse{vec(1, 3, 2, 4), vec(5, 9), {}}
	out := NormalizeAll(docs)
	if !almostEq(out[0].Norm(), 1) || !almostEq(out[1].Norm(), 1) {
		t.Error("NormalizeAll not unit")
	}
	if !out[2].IsZero() {
		t.Error("zero vector should stay zero")
	}
}
