// Package vector implements the sparse term vectors used to represent
// items and consumers (paper Section 4, "Edge weights"): each document is
// a sparse map from term ids to non-negative weights, and the similarity
// between an item and a consumer is the dot product of their vectors.
//
// Vectors are stored as parallel slices sorted by term id, which makes
// dot products a linear merge and lets the similarity-join code iterate
// terms in a canonical order.
package vector

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// TermID identifies a term (tag or stemmed word) in the vocabulary.
type TermID int32

// Entry is one (term, weight) component of a sparse vector.
type Entry struct {
	Term   TermID
	Weight float64
}

// Sparse is an immutable sparse vector with entries sorted by term id.
// Construct with FromEntries or via Builder; the zero value is the empty
// vector.
type Sparse struct {
	entries []Entry
}

// FromEntries builds a sparse vector from entries. Entries are copied,
// sorted by term, and entries with the same term are summed. Entries with
// zero weight are dropped; negative or non-finite weights panic (tf·idf
// weights are non-negative by construction).
func FromEntries(entries []Entry) Sparse {
	cp := make([]Entry, 0, len(entries))
	for _, e := range entries {
		if e.Weight == 0 {
			continue
		}
		if e.Weight < 0 || math.IsNaN(e.Weight) || math.IsInf(e.Weight, 0) {
			panic(fmt.Sprintf("vector: invalid weight %v for term %d", e.Weight, e.Term))
		}
		cp = append(cp, e)
	}
	sort.Slice(cp, func(i, j int) bool { return cp[i].Term < cp[j].Term })
	// Merge duplicates.
	out := cp[:0]
	for _, e := range cp {
		if n := len(out); n > 0 && out[n-1].Term == e.Term {
			out[n-1].Weight += e.Weight
		} else {
			out = append(out, e)
		}
	}
	return Sparse{entries: out}
}

// Len returns the number of non-zero components.
func (v Sparse) Len() int { return len(v.entries) }

// IsZero reports whether the vector has no components.
func (v Sparse) IsZero() bool { return len(v.entries) == 0 }

// Entries returns the sorted components. Callers must not modify the
// returned slice.
func (v Sparse) Entries() []Entry { return v.entries }

// At returns the i-th component in term order.
func (v Sparse) At(i int) Entry { return v.entries[i] }

// Weight returns the weight of the given term, or 0 if absent.
func (v Sparse) Weight(t TermID) float64 {
	i := sort.Search(len(v.entries), func(i int) bool { return v.entries[i].Term >= t })
	if i < len(v.entries) && v.entries[i].Term == t {
		return v.entries[i].Weight
	}
	return 0
}

// Dot returns the dot product v·u, the paper's similarity function
// w(t_i, c_j) = v(t_i) · v(c_j).
func (v Sparse) Dot(u Sparse) float64 {
	var sum float64
	i, j := 0, 0
	for i < len(v.entries) && j < len(u.entries) {
		a, b := v.entries[i], u.entries[j]
		switch {
		case a.Term < b.Term:
			i++
		case a.Term > b.Term:
			j++
		default:
			sum += a.Weight * b.Weight
			i++
			j++
		}
	}
	return sum
}

// Norm returns the Euclidean norm ‖v‖₂.
func (v Sparse) Norm() float64 {
	var s float64
	for _, e := range v.entries {
		s += e.Weight * e.Weight
	}
	return math.Sqrt(s)
}

// Sum returns the sum of component weights (the L1 norm, since weights
// are non-negative).
func (v Sparse) Sum() float64 {
	var s float64
	for _, e := range v.entries {
		s += e.Weight
	}
	return s
}

// MaxWeight returns the largest component weight (0 for the empty
// vector). Prefix-filtering bounds use it.
func (v Sparse) MaxWeight() float64 {
	var m float64
	for _, e := range v.entries {
		if e.Weight > m {
			m = e.Weight
		}
	}
	return m
}

// Cosine returns the cosine similarity between v and u, or 0 if either is
// the zero vector.
func (v Sparse) Cosine(u Sparse) float64 {
	nv, nu := v.Norm(), u.Norm()
	if nv == 0 || nu == 0 {
		return 0
	}
	return v.Dot(u) / (nv * nu)
}

// Normalize returns v scaled to unit Euclidean norm (or v itself if it is
// zero).
func (v Sparse) Normalize() Sparse {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Scale returns v multiplied by a non-negative factor.
func (v Sparse) Scale(f float64) Sparse {
	if f < 0 || math.IsNaN(f) || math.IsInf(f, 0) {
		panic(fmt.Sprintf("vector: invalid scale factor %v", f))
	}
	if f == 0 {
		return Sparse{}
	}
	out := make([]Entry, len(v.entries))
	for i, e := range v.entries {
		out[i] = Entry{Term: e.Term, Weight: e.Weight * f}
	}
	return Sparse{entries: out}
}

// Add returns the component-wise sum v + u.
func (v Sparse) Add(u Sparse) Sparse {
	out := make([]Entry, 0, len(v.entries)+len(u.entries))
	i, j := 0, 0
	for i < len(v.entries) || j < len(u.entries) {
		switch {
		case j >= len(u.entries) || (i < len(v.entries) && v.entries[i].Term < u.entries[j].Term):
			out = append(out, v.entries[i])
			i++
		case i >= len(v.entries) || u.entries[j].Term < v.entries[i].Term:
			out = append(out, u.entries[j])
			j++
		default:
			out = append(out, Entry{Term: v.entries[i].Term,
				Weight: v.entries[i].Weight + u.entries[j].Weight})
			i++
			j++
		}
	}
	return Sparse{entries: out}
}

// String renders the vector as "{term:weight, ...}".
func (v Sparse) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, e := range v.entries {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d:%.4g", e.Term, e.Weight)
	}
	b.WriteByte('}')
	return b.String()
}

// Builder accumulates term counts and produces a Sparse vector. It is the
// mutable companion of Sparse used by the text pipeline and the dataset
// generators.
type Builder struct {
	weights map[TermID]float64
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{weights: make(map[TermID]float64)}
}

// Add accumulates weight onto a term.
func (b *Builder) Add(t TermID, w float64) {
	b.weights[t] += w
}

// AddCount increments a term count by one.
func (b *Builder) AddCount(t TermID) { b.Add(t, 1) }

// Len returns the number of distinct terms accumulated.
func (b *Builder) Len() int { return len(b.weights) }

// Vector produces the immutable sparse vector. The builder remains
// usable.
func (b *Builder) Vector() Sparse {
	entries := make([]Entry, 0, len(b.weights))
	for t, w := range b.weights {
		//lint:allow determinism — FromEntries sorts by Term before any caller sees the slice, and map keys are unique, so iteration order never escapes
		entries = append(entries, Entry{Term: t, Weight: w})
	}
	return FromEntries(entries)
}
