package vector

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestCorpusRoundTrip(t *testing.T) {
	docs := []Sparse{
		vec(1, 0.5, 7, 2.25),
		{},
		vec(0, 1),
		vec(3, 0.125, 4, 0.25, 5, 0.0625),
	}
	var buf bytes.Buffer
	if err := WriteCorpus(&buf, docs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCorpus(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(docs) {
		t.Fatalf("count %d -> %d", len(docs), len(back))
	}
	for i := range docs {
		if docs[i].Len() != back[i].Len() {
			t.Fatalf("doc %d len %d -> %d", i, docs[i].Len(), back[i].Len())
		}
		for _, e := range docs[i].Entries() {
			if math.Abs(back[i].Weight(e.Term)-e.Weight) > 1e-12 {
				t.Fatalf("doc %d term %d weight %v -> %v",
					i, e.Term, e.Weight, back[i].Weight(e.Term))
			}
		}
	}
}

func TestReadCorpusCommentsAndBlanks(t *testing.T) {
	in := "# corpus\n\nv 1:0.5\n# more\nv\n"
	docs, err := ReadCorpus(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 || docs[0].Len() != 1 || docs[1].Len() != 0 {
		t.Errorf("parsed %d docs: %v", len(docs), docs)
	}
}

func TestReadCorpusErrors(t *testing.T) {
	cases := map[string]string{
		"wrong record":   "x 1:2\n",
		"missing colon":  "v 12\n",
		"empty term":     "v :2\n",
		"bad term":       "v a:2\n",
		"negative term":  "v -1:2\n",
		"bad weight":     "v 1:x\n",
		"zero weight":    "v 1:0\n",
		"negativeWeight": "v 1:-3\n",
	}
	for name, in := range cases {
		if _, err := ReadCorpus(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestWriteCorpusFormatStable(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCorpus(&buf, []Sparse{vec(2, 0.5, 1, 1.5)}); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "v 1:1.5 2:0.5\n" {
		t.Errorf("WriteCorpus = %q", got)
	}
}
