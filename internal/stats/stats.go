// Package stats provides the small statistical toolkit behind the
// experimental harness: histograms with linear or logarithmic binning
// (Figures 6 and 7 plot similarity and capacity distributions on log
// scales), and summary statistics.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram counts values in equal-width bins over [Lo, Hi); values
// outside the range land in the under/overflow counters.
type Histogram struct {
	Lo, Hi    float64
	Counts    []int
	Underflow int
	Overflow  int
	total     int
}

// NewHistogram creates a histogram with the given bin count over
// [lo, hi). It panics on invalid ranges or bin counts, which are
// programming errors.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins < 1 || !(lo < hi) {
		panic(fmt.Sprintf("stats: invalid histogram [%v,%v) with %d bins", lo, hi, bins))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one value.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Lo:
		h.Underflow++
	case x >= h.Hi:
		h.Overflow++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if i >= len(h.Counts) { // float round-up guard
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// Total returns the number of recorded values, including out-of-range
// ones.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*width
}

// Fraction returns the fraction of in-range values in bin i.
func (h *Histogram) Fraction(i int) float64 {
	in := h.total - h.Underflow - h.Overflow
	if in == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(in)
}

// LogHistogram counts values in geometrically growing bins, the natural
// binning for the heavy-tailed capacity and similarity distributions of
// Figures 6-7.
type LogHistogram struct {
	Lo     float64 // lower edge of the first bin (must be > 0)
	Base   float64 // bin-edge growth factor (must be > 1)
	Counts []int
	Zero   int // values ≤ 0
	total  int
}

// NewLogHistogram creates a log-binned histogram with bin edges
// lo·base^i for i = 0..bins.
func NewLogHistogram(lo, base float64, bins int) *LogHistogram {
	if lo <= 0 || base <= 1 || bins < 1 {
		panic(fmt.Sprintf("stats: invalid log histogram (lo=%v base=%v bins=%d)", lo, base, bins))
	}
	return &LogHistogram{Lo: lo, Base: base, Counts: make([]int, bins)}
}

// Add records one value. Values below Lo count in bin 0; values beyond
// the last edge count in the last bin.
func (h *LogHistogram) Add(x float64) {
	h.total++
	if x <= 0 {
		h.Zero++
		return
	}
	i := 0
	if x > h.Lo {
		i = int(math.Log(x/h.Lo) / math.Log(h.Base))
	}
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
}

// Total returns the number of recorded values.
func (h *LogHistogram) Total() int { return h.total }

// BinLow returns the lower edge of bin i.
func (h *LogHistogram) BinLow(i int) float64 {
	return h.Lo * math.Pow(h.Base, float64(i))
}

// String renders non-empty bins as "[lo,hi): count" lines.
func (h *LogHistogram) String() string {
	var b strings.Builder
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		fmt.Fprintf(&b, "[%.4g, %.4g): %d\n", h.BinLow(i), h.BinLow(i+1), c)
	}
	return b.String()
}

// Summary holds the moments and quantiles of a sample.
type Summary struct {
	Count          int
	Min, Max       float64
	Mean           float64
	Stddev         float64
	Median         float64
	P90, P99       float64
	Sum            float64
	GiniCoefficent float64
}

// Summarize computes summary statistics of a sample. The Gini
// coefficient quantifies how skewed a distribution is (0 = uniform,
// →1 = concentrated), a compact scalar for the capacity-skew story the
// paper tells about flickr-large (Section 6, "uneven capacity
// distribution").
func Summarize(xs []float64) Summary {
	s := Summary{Count: len(xs)}
	if len(xs) == 0 {
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	for _, x := range sorted {
		s.Sum += x
	}
	s.Mean = s.Sum / float64(len(sorted))
	var ss float64
	for _, x := range sorted {
		d := x - s.Mean
		ss += d * d
	}
	s.Stddev = math.Sqrt(ss / float64(len(sorted)))
	s.Median = quantile(sorted, 0.5)
	s.P90 = quantile(sorted, 0.9)
	s.P99 = quantile(sorted, 0.99)
	// Gini from the sorted sample: (2Σ i·x_i)/(n Σx) − (n+1)/n.
	if s.Sum > 0 {
		var weighted float64
		for i, x := range sorted {
			weighted += float64(i+1) * x
		}
		n := float64(len(sorted))
		s.GiniCoefficent = 2*weighted/(n*s.Sum) - (n+1)/n
	}
	return s
}

// quantile returns the q-quantile of a sorted sample by linear
// interpolation.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	i := int(pos)
	if i >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(i)
	return sorted[i]*(1-frac) + sorted[i+1]*frac
}
