package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1.9, 2, 5, 9.99, -1, 10, 100} {
		h.Add(x)
	}
	if h.Total() != 8 {
		t.Errorf("Total = %d", h.Total())
	}
	if h.Underflow != 1 || h.Overflow != 2 {
		t.Errorf("under=%d over=%d", h.Underflow, h.Overflow)
	}
	if h.Counts[0] != 2 { // 0 and 1.9
		t.Errorf("bin0 = %d, want 2", h.Counts[0])
	}
	if h.Counts[1] != 1 || h.Counts[2] != 1 || h.Counts[4] != 1 {
		t.Errorf("counts = %v", h.Counts)
	}
	if c := h.BinCenter(0); c != 1 {
		t.Errorf("BinCenter(0) = %v, want 1", c)
	}
	if f := h.Fraction(0); math.Abs(f-0.4) > 1e-12 {
		t.Errorf("Fraction(0) = %v, want 0.4", f)
	}
}

func TestHistogramPanicsOnBadArgs(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero bins":    func() { NewHistogram(0, 1, 0) },
		"lo >= hi":     func() { NewHistogram(1, 1, 3) },
		"log lo <= 0":  func() { NewLogHistogram(0, 2, 3) },
		"log base <=1": func() { NewLogHistogram(1, 1, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestHistogramConservation(t *testing.T) {
	prop := func(vals []float64) bool {
		h := NewHistogram(-5, 5, 7)
		finite := 0
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			h.Add(v)
			finite++
		}
		inBins := h.Underflow + h.Overflow
		for _, c := range h.Counts {
			inBins += c
		}
		return inBins == finite && h.Total() == finite
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLogHistogram(t *testing.T) {
	h := NewLogHistogram(1, 2, 6) // edges 1,2,4,8,16,32,64
	for _, x := range []float64{0.5, 1, 1.5, 3, 10, 100, 0, -2} {
		h.Add(x)
	}
	if h.Zero != 2 {
		t.Errorf("Zero = %d, want 2", h.Zero)
	}
	if h.Counts[0] != 3 { // 0.5 (clamped), 1, 1.5
		t.Errorf("bin0 = %d, want 3", h.Counts[0])
	}
	if h.Counts[1] != 1 { // 3
		t.Errorf("bin1 = %d, want 1", h.Counts[1])
	}
	if h.Counts[3] != 1 { // 10 in [8,16)
		t.Errorf("bin3 = %d, want 1", h.Counts[3])
	}
	if h.Counts[5] != 1 { // 100 clamped into last bin
		t.Errorf("bin5 = %d, want 1", h.Counts[5])
	}
	if h.Total() != 8 {
		t.Errorf("Total = %d", h.Total())
	}
	if h.BinLow(3) != 8 {
		t.Errorf("BinLow(3) = %v", h.BinLow(3))
	}
	if h.String() == "" {
		t.Error("String empty despite counts")
	}
}

func TestLogHistogramBinEdgesConsistent(t *testing.T) {
	h := NewLogHistogram(0.01, 1.5, 30)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		x := math.Exp(rng.NormFloat64())
		h.Add(x)
		// The value must be counted in a bin whose range contains it
		// (modulo clamping at the ends).
	}
	total := h.Zero
	for _, c := range h.Counts {
		total += c
	}
	if total != 5000 {
		t.Errorf("counts sum %d, want 5000", total)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.Count != 4 || s.Min != 1 || s.Max != 4 || s.Sum != 10 || s.Mean != 2.5 {
		t.Errorf("summary %+v", s)
	}
	if math.Abs(s.Median-2.5) > 1e-12 {
		t.Errorf("median %v, want 2.5", s.Median)
	}
	if math.Abs(s.Stddev-math.Sqrt(1.25)) > 1e-12 {
		t.Errorf("stddev %v", s.Stddev)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s.Count != 0 {
		t.Error("nil summary wrong")
	}
	s := Summarize([]float64{7})
	if s.Median != 7 || s.P90 != 7 || s.P99 != 7 || s.Stddev != 0 {
		t.Errorf("single-value summary %+v", s)
	}
}

func TestGiniCoefficient(t *testing.T) {
	// Uniform sample: Gini = 0.
	uniform := Summarize([]float64{5, 5, 5, 5})
	if math.Abs(uniform.GiniCoefficent) > 1e-12 {
		t.Errorf("uniform gini %v", uniform.GiniCoefficent)
	}
	// Totally concentrated: Gini -> (n-1)/n.
	conc := Summarize([]float64{0, 0, 0, 100})
	if math.Abs(conc.GiniCoefficent-0.75) > 1e-12 {
		t.Errorf("concentrated gini %v, want 0.75", conc.GiniCoefficent)
	}
	// Skewed distributions score between the two.
	skew := Summarize([]float64{1, 2, 4, 100})
	if skew.GiniCoefficent <= uniform.GiniCoefficent || skew.GiniCoefficent >= conc.GiniCoefficent {
		t.Errorf("skewed gini %v out of order", skew.GiniCoefficent)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Summarize sorted the caller's slice")
	}
}

func TestQuantileMonotone(t *testing.T) {
	prop := func(raw []float64, qa, qb uint8) bool {
		var xs []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		// P90 <= P99, Min <= Median <= Max.
		return s.P90 <= s.P99+1e-9 && s.Min <= s.Median+1e-9 && s.Median <= s.Max+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
