package stats

import (
	"math/rand"
	"testing"
)

func BenchmarkHistogramAdd(b *testing.B) {
	h := NewHistogram(0, 1, 64)
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1024)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Add(xs[i%len(xs)])
	}
}

func BenchmarkLogHistogramAdd(b *testing.B) {
	h := NewLogHistogram(0.001, 1.5, 48)
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 1024)
	for i := range xs {
		xs[i] = rng.ExpFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Add(xs[i%len(xs)])
	}
}

func BenchmarkSummarize(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Summarize(xs)
	}
}
