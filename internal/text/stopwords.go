package text

// stopWords is a standard English stop-word list (the classic Glasgow /
// SMART-style core), covering determiners, pronouns, prepositions,
// conjunctions, auxiliaries, and high-frequency adverbs. It is applied
// after lowercasing, before stemming.
var stopWords = map[string]struct{}{}

func init() {
	list := []string{
		"a", "about", "above", "after", "again", "against", "all", "am",
		"an", "and", "any", "are", "aren", "as", "at", "be", "because",
		"been", "before", "being", "below", "between", "both", "but",
		"by", "can", "cannot", "could", "couldn", "did", "didn", "do",
		"does", "doesn", "doing", "don", "down", "during", "each", "few",
		"for", "from", "further", "had", "hadn", "has", "hasn", "have",
		"haven", "having", "he", "her", "here", "hers", "herself", "him",
		"himself", "his", "how", "i", "if", "in", "into", "is", "isn",
		"it", "its", "itself", "just", "ll", "me", "more", "most",
		"mustn", "my", "myself", "no", "nor", "not", "now", "of", "off",
		"on", "once", "only", "or", "other", "ought", "our", "ours",
		"ourselves", "out", "over", "own", "re", "same", "shan", "she",
		"should", "shouldn", "so", "some", "such", "than", "that", "the",
		"their", "theirs", "them", "themselves", "then", "there",
		"these", "they", "this", "those", "through", "to", "too",
		"under", "until", "up", "ve", "very", "was", "wasn", "we",
		"were", "weren", "what", "when", "where", "which", "while",
		"who", "whom", "why", "will", "with", "won", "would", "wouldn",
		"you", "your", "yours", "yourself", "yourselves",
	}
	for _, w := range list {
		stopWords[w] = struct{}{}
	}
}

// IsStopWord reports whether the (lowercased) token is on the stop list.
func IsStopWord(token string) bool {
	_, ok := stopWords[token]
	return ok
}

// StopWordCount returns the size of the stop list (exported for tests and
// documentation).
func StopWordCount() int { return len(stopWords) }
