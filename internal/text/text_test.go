package text

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Hello, World!", []string{"hello", "world"}},
		{"it's a test-case", []string{"it", "test", "case"}},
		{"", nil},
		{"...!!!", nil},
		{"C3PO and R2D2", []string{"c3po", "and", "r2d2"}},
		{"one  two\tthree\nfour", []string{"one", "two", "three", "four"}},
		{"a b c", nil}, // single-char tokens dropped
		{"Ünïcödé wörds", []string{"ünïcödé", "wörds"}},
	}
	for _, c := range cases {
		if got := Tokenize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestStopWords(t *testing.T) {
	for _, w := range []string{"the", "and", "of", "is", "was", "you"} {
		if !IsStopWord(w) {
			t.Errorf("IsStopWord(%q) = false", w)
		}
	}
	for _, w := range []string{"photography", "camera", "question", ""} {
		if IsStopWord(w) {
			t.Errorf("IsStopWord(%q) = true", w)
		}
	}
	if StopWordCount() < 100 {
		t.Errorf("stop list suspiciously small: %d", StopWordCount())
	}
}

// Classic Porter test vectors, from the published algorithm description
// and its reference implementation's vocabulary.
func TestStemVectors(t *testing.T) {
	cases := map[string]string{
		"caresses":       "caress",
		"ponies":         "poni",
		"ties":           "ti",
		"caress":         "caress",
		"cats":           "cat",
		"feed":           "feed",
		"agreed":         "agre",
		"plastered":      "plaster",
		"bled":           "bled",
		"motoring":       "motor",
		"sing":           "sing",
		"conflated":      "conflat",
		"troubled":       "troubl",
		"sized":          "size",
		"hopping":        "hop",
		"tanned":         "tan",
		"falling":        "fall",
		"hissing":        "hiss",
		"fizzed":         "fizz",
		"failing":        "fail",
		"filing":         "file",
		"happy":          "happi",
		"sky":            "sky",
		"relational":     "relat",
		"conditional":    "condit",
		"rational":       "ration",
		"valenci":        "valenc",
		"hesitanci":      "hesit",
		"digitizer":      "digit",
		"conformabli":    "conform",
		"radicalli":      "radic",
		"differentli":    "differ",
		"vileli":         "vile",
		"analogousli":    "analog",
		"vietnamization": "vietnam",
		"predication":    "predic",
		"operator":       "oper",
		"feudalism":      "feudal",
		"decisiveness":   "decis",
		"hopefulness":    "hope",
		"callousness":    "callous",
		"formaliti":      "formal",
		"sensitiviti":    "sensit",
		"sensibiliti":    "sensibl",
		"triplicate":     "triplic",
		"formative":      "form",
		"formalize":      "formal",
		"electriciti":    "electr",
		"electrical":     "electr",
		"hopeful":        "hope",
		"goodness":       "good",
		"revival":        "reviv",
		"allowance":      "allow",
		"inference":      "infer",
		"airliner":       "airlin",
		"gyroscopic":     "gyroscop",
		"adjustable":     "adjust",
		"defensible":     "defens",
		"irritant":       "irrit",
		"replacement":    "replac",
		"adjustment":     "adjust",
		"dependent":      "depend",
		"adoption":       "adopt",
		"homologou":      "homolog",
		"communism":      "commun",
		"activate":       "activ",
		"angulariti":     "angular",
		"homologous":     "homolog",
		"effective":      "effect",
		"bowdlerize":     "bowdler",
		"probate":        "probat",
		"rate":           "rate",
		"cease":          "ceas",
		"controll":       "control",
		"roll":           "roll",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemShortWords(t *testing.T) {
	for _, w := range []string{"", "a", "is", "go"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged", w, got)
		}
	}
}

func TestStemIdempotentOnCommonWords(t *testing.T) {
	// Stemming a stem should usually be a no-op; check on a realistic
	// vocabulary rather than arbitrary strings (Porter is not formally
	// idempotent on all inputs).
	words := []string{
		"photography", "question", "answer", "match", "content",
		"consumer", "algorithm", "relevance", "capacity", "iteration",
		"similarity", "threshold", "distribution", "social", "media",
	}
	for _, w := range words {
		once := Stem(w)
		twice := Stem(once)
		if once != twice {
			t.Errorf("Stem not idempotent on %q: %q -> %q", w, once, twice)
		}
	}
}

func TestStemNeverPanicsAndShrinks(t *testing.T) {
	prop := func(raw []byte) bool {
		// Build a plausible lowercase word from arbitrary bytes.
		var word []byte
		for _, b := range raw {
			word = append(word, 'a'+b%26)
		}
		s := Stem(string(word))
		return len(s) <= len(word)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPreprocess(t *testing.T) {
	got := Preprocess("The cats are running quickly through the gardens!")
	want := []string{"cat", "run", "quickli", "garden"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Preprocess = %v, want %v", got, want)
	}
}

func TestPreprocessDropsStopWordsAndShortStems(t *testing.T) {
	got := Preprocess("it is was the a an")
	if len(got) != 0 {
		t.Errorf("Preprocess(stopwords) = %v, want empty", got)
	}
}

func TestVocabulary(t *testing.T) {
	v := NewVocabulary()
	a := v.ID("apple")
	b := v.ID("banana")
	if a == b {
		t.Error("distinct tokens share an id")
	}
	if got := v.ID("apple"); got != a {
		t.Errorf("re-intern changed id: %d != %d", got, a)
	}
	if v.Size() != 2 {
		t.Errorf("Size = %d", v.Size())
	}
	if v.Token(a) != "apple" || v.Token(b) != "banana" {
		t.Error("Token lookup broken")
	}
	if id, ok := v.Lookup("apple"); !ok || id != a {
		t.Error("Lookup(apple) failed")
	}
	if _, ok := v.Lookup("cherry"); ok {
		t.Error("Lookup invented a token")
	}
}

func TestVocabularyDenseIDs(t *testing.T) {
	v := NewVocabulary()
	for i := 0; i < 100; i++ {
		id := v.ID(string(rune('a'+i%26)) + string(rune('a'+i/26)))
		if int(id) >= 100 {
			t.Fatalf("id %d not dense", id)
		}
	}
}
