package text

import "testing"

var benchDoc = `The quick brown foxes were jumping over the lazy dogs
while photographers adjusted their cameras, hoping that the generalization
of their relational conditioning would eventually rationalize the
sensitivities of the national optimization communities.`

func BenchmarkTokenize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Tokenize(benchDoc)
	}
}

func BenchmarkStem(b *testing.B) {
	words := []string{"generalization", "photographers", "conditioning",
		"rationalize", "sensitivities", "optimization", "jumping", "lazy"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Stem(words[i%len(words)])
	}
}

func BenchmarkPreprocess(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Preprocess(benchDoc)
	}
}
