// Package text implements the document preprocessing pipeline the paper
// applies to the Yahoo! Answers corpus (Section 6): "We preprocess the
// answers to remove punctuation and stop-words, stem words, and apply
// tf·idf weighting." It provides a tokenizer, an English stop-word list,
// a Porter stemmer, and a vocabulary that interns token strings to dense
// term ids for the vector package.
package text

import (
	"strings"
	"unicode"
)

// Tokenize lowercases the input and splits it into maximal runs of
// letters and digits, discarding punctuation and other symbols. Tokens
// of a single character are dropped: they are almost always noise in
// user-generated text and carry no tf·idf signal.
func Tokenize(s string) []string {
	var tokens []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 1 {
			tokens = append(tokens, cur.String())
		}
		cur.Reset()
	}
	for _, r := range s {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			cur.WriteRune(unicode.ToLower(r))
		default:
			flush()
		}
	}
	flush()
	return tokens
}

// Preprocess runs the full pipeline on a raw document: tokenize, drop
// stop-words, stem. It returns the processed token stream (with
// duplicates preserved, so callers can count term frequencies).
func Preprocess(s string) []string {
	raw := Tokenize(s)
	out := raw[:0]
	for _, tok := range raw {
		if IsStopWord(tok) {
			continue
		}
		stem := Stem(tok)
		if len(stem) > 1 && !IsStopWord(stem) {
			out = append(out, stem)
		}
	}
	return out
}

// Vocabulary interns token strings to dense int32 term identifiers.
// The zero value is not usable; call NewVocabulary.
type Vocabulary struct {
	ids    map[string]int32
	tokens []string
}

// NewVocabulary returns an empty vocabulary.
func NewVocabulary() *Vocabulary {
	return &Vocabulary{ids: make(map[string]int32)}
}

// ID returns the term id for a token, assigning the next free id on
// first sight.
func (v *Vocabulary) ID(token string) int32 {
	if id, ok := v.ids[token]; ok {
		return id
	}
	id := int32(len(v.tokens))
	v.ids[token] = id
	v.tokens = append(v.tokens, token)
	return id
}

// Lookup returns the id of a token without interning; ok is false if the
// token has never been seen.
func (v *Vocabulary) Lookup(token string) (id int32, ok bool) {
	id, ok = v.ids[token]
	return id, ok
}

// Token returns the token string for an id.
func (v *Vocabulary) Token(id int32) string { return v.tokens[id] }

// Size returns the number of interned tokens.
func (v *Vocabulary) Size() int { return len(v.tokens) }
