package text

// Stem reduces an English word to its stem using the Porter stemming
// algorithm (M.F. Porter, "An algorithm for suffix stripping", Program
// 14(3), 1980). The input must already be lowercased; Stem returns inputs
// shorter than three characters unchanged, as the original algorithm
// specifies.
func Stem(word string) string {
	if len(word) < 3 {
		return word
	}
	w := &stemWord{b: []byte(word)}
	w.step1a()
	w.step1b()
	w.step1c()
	w.step2()
	w.step3()
	w.step4()
	w.step5a()
	w.step5b()
	return string(w.b)
}

// stemWord carries the working buffer for one stemming run.
type stemWord struct {
	b []byte
}

// isConsonant reports whether position i holds a consonant in Porter's
// sense: a letter other than a, e, i, o, u, where 'y' counts as a
// consonant only when preceded by a vowel... more precisely, 'y' is a
// consonant when it is the first letter or follows a vowel-position
// letter that is itself a consonant.
func (w *stemWord) isConsonant(i int) bool {
	switch w.b[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !w.isConsonant(i - 1)
	default:
		return true
	}
}

// measure computes m, the number of vowel-consonant sequences
// [C](VC)^m[V] in the first k bytes of the word.
func (w *stemWord) measure(k int) int {
	m := 0
	i := 0
	// Skip initial consonant run.
	for i < k && w.isConsonant(i) {
		i++
	}
	for {
		// Skip vowel run.
		for i < k && !w.isConsonant(i) {
			i++
		}
		if i >= k {
			return m
		}
		// Skip consonant run: one full VC cycle.
		for i < k && w.isConsonant(i) {
			i++
		}
		m++
	}
}

// hasVowel reports whether the first k bytes contain a vowel.
func (w *stemWord) hasVowel(k int) bool {
	for i := 0; i < k; i++ {
		if !w.isConsonant(i) {
			return true
		}
	}
	return false
}

// endsDoubleConsonant reports whether the first k bytes end in a double
// consonant (e.g. -tt, -ss).
func (w *stemWord) endsDoubleConsonant(k int) bool {
	if k < 2 {
		return false
	}
	return w.b[k-1] == w.b[k-2] && w.isConsonant(k-1)
}

// endsCVC reports whether the first k bytes end consonant-vowel-consonant
// where the final consonant is not w, x, or y (Porter's *o condition).
func (w *stemWord) endsCVC(k int) bool {
	if k < 3 {
		return false
	}
	if !w.isConsonant(k-3) || w.isConsonant(k-2) || !w.isConsonant(k-1) {
		return false
	}
	switch w.b[k-1] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

// hasSuffix reports whether the word currently ends with s.
func (w *stemWord) hasSuffix(s string) bool {
	n := len(w.b)
	if len(s) > n {
		return false
	}
	return string(w.b[n-len(s):]) == s
}

// stemLen returns the length of the word with suffix s removed.
func (w *stemWord) stemLen(s string) int { return len(w.b) - len(s) }

// replace replaces suffix s with r if the measure of the remaining stem
// is greater than m. It reports whether s matched (not whether the
// replacement fired), matching the control flow of Porter's rule lists
// where the first matching suffix consumes the step.
func (w *stemWord) replace(s, r string, m int) bool {
	if !w.hasSuffix(s) {
		return false
	}
	if w.measure(w.stemLen(s)) > m {
		w.b = append(w.b[:w.stemLen(s)], r...)
	}
	return true
}

// step1a handles plurals: sses→ss, ies→i, ss→ss, s→"".
func (w *stemWord) step1a() {
	switch {
	case w.hasSuffix("sses"):
		w.b = w.b[:len(w.b)-2]
	case w.hasSuffix("ies"):
		w.b = w.b[:len(w.b)-2]
	case w.hasSuffix("ss"):
		// keep
	case w.hasSuffix("s"):
		w.b = w.b[:len(w.b)-1]
	}
}

// step1b handles -eed, -ed, -ing.
func (w *stemWord) step1b() {
	if w.hasSuffix("eed") {
		if w.measure(w.stemLen("eed")) > 0 {
			w.b = w.b[:len(w.b)-1]
		}
		return
	}
	fired := false
	if w.hasSuffix("ed") && w.hasVowel(w.stemLen("ed")) {
		w.b = w.b[:w.stemLen("ed")]
		fired = true
	} else if w.hasSuffix("ing") && w.hasVowel(w.stemLen("ing")) {
		w.b = w.b[:w.stemLen("ing")]
		fired = true
	}
	if !fired {
		return
	}
	// Cleanup after stripping -ed/-ing.
	switch {
	case w.hasSuffix("at"), w.hasSuffix("bl"), w.hasSuffix("iz"):
		w.b = append(w.b, 'e')
	case w.endsDoubleConsonant(len(w.b)):
		last := w.b[len(w.b)-1]
		if last != 'l' && last != 's' && last != 'z' {
			w.b = w.b[:len(w.b)-1]
		}
	case w.measure(len(w.b)) == 1 && w.endsCVC(len(w.b)):
		w.b = append(w.b, 'e')
	}
}

// step1c turns terminal y into i when the stem contains a vowel.
func (w *stemWord) step1c() {
	if w.hasSuffix("y") && w.hasVowel(w.stemLen("y")) {
		w.b[len(w.b)-1] = 'i'
	}
}

// step2 maps double suffixes to single ones when m > 0.
func (w *stemWord) step2() {
	rules := []struct{ s, r string }{
		{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"},
		{"anci", "ance"}, {"izer", "ize"}, {"abli", "able"},
		{"alli", "al"}, {"entli", "ent"}, {"eli", "e"},
		{"ousli", "ous"}, {"ization", "ize"}, {"ation", "ate"},
		{"ator", "ate"}, {"alism", "al"}, {"iveness", "ive"},
		{"fulness", "ful"}, {"ousness", "ous"}, {"aliti", "al"},
		{"iviti", "ive"}, {"biliti", "ble"},
	}
	for _, rule := range rules {
		if w.replace(rule.s, rule.r, 0) {
			return
		}
	}
}

// step3 strips -icate, -ative, etc. when m > 0.
func (w *stemWord) step3() {
	rules := []struct{ s, r string }{
		{"icate", "ic"}, {"ative", ""}, {"alize", "al"},
		{"iciti", "ic"}, {"ical", "ic"}, {"ful", ""}, {"ness", ""},
	}
	for _, rule := range rules {
		if w.replace(rule.s, rule.r, 0) {
			return
		}
	}
}

// step4 strips residual suffixes when m > 1.
func (w *stemWord) step4() {
	suffixes := []string{
		"al", "ance", "ence", "er", "ic", "able", "ible", "ant",
		"ement", "ment", "ent", "ion", "ou", "ism", "ate", "iti",
		"ous", "ive", "ize",
	}
	for _, s := range suffixes {
		if !w.hasSuffix(s) {
			continue
		}
		k := w.stemLen(s)
		if s == "ion" {
			// -ion only strips after s or t.
			if k > 0 && (w.b[k-1] == 's' || w.b[k-1] == 't') && w.measure(k) > 1 {
				w.b = w.b[:k]
			}
			return
		}
		if w.measure(k) > 1 {
			w.b = w.b[:k]
		}
		return
	}
}

// step5a removes a terminal e when m > 1, or when m == 1 and the stem
// does not end CVC.
func (w *stemWord) step5a() {
	if !w.hasSuffix("e") {
		return
	}
	k := w.stemLen("e")
	m := w.measure(k)
	if m > 1 || (m == 1 && !w.endsCVC(k)) {
		w.b = w.b[:k]
	}
}

// step5b collapses a terminal double l when m > 1.
func (w *stemWord) step5b() {
	if w.measure(len(w.b)) > 1 && w.hasSuffix("ll") {
		w.b = w.b[:len(w.b)-1]
	}
}
