// Package cliio routes every CLI's output through one checked path. The
// repository's tools used to write results through bare `defer
// f.Close()`, which discards the error a full disk or failing
// descriptor reports at flush/close time — the process would exit 0
// with a silently truncated graph, matching, or profile. An Output
// buffers writes, and its Close flushes the buffer and closes the file,
// returning the first error anywhere on that path; the tools' run
// functions propagate it into a nonzero exit.
package cliio

import (
	"bufio"
	"fmt"
	"os"
)

// Output is a buffered, close-checked output destination.
type Output struct {
	w        *bufio.Writer
	f        *os.File
	ownsFile bool
	path     string
	closed   bool
}

// Create opens path for writing. An empty path or "-" selects standard
// output (which Close flushes but does not close).
func Create(path string) (*Output, error) {
	if path == "" || path == "-" {
		return Stdout(), nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &Output{w: bufio.NewWriterSize(f, 1<<16), f: f, ownsFile: true, path: path}, nil
}

// Stdout wraps standard output. Close flushes, so short writes and
// ENOSPC on a redirected stdout surface exactly like file errors.
func Stdout() *Output {
	return &Output{w: bufio.NewWriterSize(os.Stdout, 1<<16), f: os.Stdout, path: "stdout"}
}

// Wrap adopts an already-open file (used by tests and by callers that
// open files in special modes). Close closes it.
func Wrap(f *os.File) *Output {
	return &Output{w: bufio.NewWriterSize(f, 1<<16), f: f, ownsFile: true, path: f.Name()}
}

// Write implements io.Writer.
func (o *Output) Write(p []byte) (int, error) { return o.w.Write(p) }

// Path names the destination for error messages.
func (o *Output) Path() string { return o.path }

// Close flushes the buffer and closes the file (when owned), returning
// the first error on the whole path. It must run on every exit that
// claims success — a nil return is the only proof the bytes reached the
// file. Idempotent: later calls return nil.
func (o *Output) Close() error {
	if o.closed {
		return nil
	}
	o.closed = true
	flushErr := o.w.Flush()
	var closeErr error
	if o.ownsFile {
		closeErr = o.f.Close()
	}
	if flushErr != nil {
		return fmt.Errorf("writing %s: %w", o.path, flushErr)
	}
	if closeErr != nil {
		return fmt.Errorf("closing %s: %w", o.path, closeErr)
	}
	return nil
}

// CloseInto is the defer helper for run-style mains: it closes o and,
// when the surrounding function is otherwise succeeding, stores the
// close error into *err so a failed flush turns into a nonzero exit.
//
//	out, err := cliio.Create(path)
//	...
//	defer cliio.CloseInto(out, &retErr)
func CloseInto(o *Output, err *error) {
	if cerr := o.Close(); cerr != nil && *err == nil {
		*err = cerr
	}
}
