package cliio

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCreateWriteClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	o, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(o, "hello %d\n", 42)
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hello 42\n" {
		t.Fatalf("wrote %q", data)
	}
	if err := o.Close(); err != nil {
		t.Fatalf("second Close not idempotent: %v", err)
	}
}

// TestCloseSurfacesWriteFailure pins the bug this package exists for: a
// failing descriptor must turn into a Close error (and therefore a
// nonzero exit), never a silent success. The descriptor is made to fail
// by opening the target read-only — every buffered byte bounces at
// flush, exactly like ENOSPC on a full disk.
func TestCloseSurfacesWriteFailure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ro.txt")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path) // read-only: writes fail with EBADF
	if err != nil {
		t.Fatal(err)
	}
	o := Wrap(f)
	fmt.Fprintln(o, "doomed bytes")
	err = o.Close()
	if err == nil {
		t.Fatal("Close swallowed the write failure")
	}
	if !strings.Contains(err.Error(), path) {
		t.Fatalf("error does not name the destination: %v", err)
	}
}

// TestCloseSurfacesENOSPC writes through a full device when the
// platform provides one (/dev/full on Linux): the classic
// disk-full-exit-0 scenario.
func TestCloseSurfacesENOSPC(t *testing.T) {
	f, err := os.OpenFile("/dev/full", os.O_WRONLY, 0)
	if err != nil {
		t.Skip("/dev/full not available")
	}
	o := Wrap(f)
	fmt.Fprintln(o, "does not fit")
	if err := o.Close(); err == nil {
		t.Fatal("writing to a full device closed clean")
	}
}

func TestCloseIntoKeepsFirstError(t *testing.T) {
	f, err := os.Open(os.DevNull)
	if err != nil {
		t.Fatal(err)
	}
	o := Wrap(f)
	fmt.Fprintln(o, "x")
	var retErr error
	CloseInto(o, &retErr)
	if retErr == nil {
		t.Fatal("CloseInto dropped the close error")
	}
	// A pre-existing error wins; the close error must not overwrite it.
	f2, _ := os.Open(os.DevNull)
	o2 := Wrap(f2)
	fmt.Fprintln(o2, "x")
	prior := fmt.Errorf("prior failure")
	retErr = prior
	CloseInto(o2, &retErr)
	if retErr != prior {
		t.Fatalf("CloseInto replaced the prior error with %v", retErr)
	}
}

func TestStdoutPathSelection(t *testing.T) {
	for _, p := range []string{"", "-"} {
		o, err := Create(p)
		if err != nil {
			t.Fatal(err)
		}
		if o.Path() != "stdout" {
			t.Fatalf("Create(%q) path %q", p, o.Path())
		}
		if err := o.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
