package dataset

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/stats"
)

func TestZipfBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z := NewZipf(rng, 0.8, 50)
	if z.N() != 50 {
		t.Errorf("N = %d", z.N())
	}
	for i := 0; i < 10000; i++ {
		d := z.Draw()
		if d < 0 || d >= 50 {
			t.Fatalf("draw %d out of range", d)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	// Rank 0 must be drawn far more often than rank 40.
	rng := rand.New(rand.NewSource(2))
	z := NewZipf(rng, 1.0, 50)
	counts := make([]int, 50)
	for i := 0; i < 50000; i++ {
		counts[z.Draw()]++
	}
	if counts[0] < 4*counts[40] {
		t.Errorf("zipf not skewed: c0=%d c40=%d", counts[0], counts[40])
	}
	// Counts roughly monotone at the head.
	if counts[0] < counts[1] || counts[1] < counts[5] {
		t.Errorf("zipf head not monotone: %v", counts[:6])
	}
}

func TestZipfPanicsOnBadParams(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for name, fn := range map[string]func(){
		"n=0": func() { NewZipf(rng, 1, 0) },
		"s=0": func() { NewZipf(rng, 0, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestParetoIntBoundsAndSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ones := 0
	for i := 0; i < 20000; i++ {
		x := ParetoInt(rng, 1, 100, 1.3)
		if x < 1 || x > 100 {
			t.Fatalf("pareto %d out of [1,100]", x)
		}
		if x == 1 {
			ones++
		}
	}
	// Power law: the minimum dominates.
	if ones < 8000 {
		t.Errorf("pareto not heavy at xmin: %d ones of 20000", ones)
	}
	if x := ParetoInt(rng, 5, 3, 1); x != 5 {
		t.Errorf("xmax < xmin: got %d, want clamp to 5", x)
	}
}

func TestFlickrCorpusShape(t *testing.T) {
	cfg := FlickrSmallConfig()
	cfg.NumItems, cfg.NumConsumers, cfg.Seed = 200, 80, 7
	c := Flickr("t", cfg)
	if c.NumItems() != 200 || c.NumConsumers() != 80 {
		t.Fatalf("sizes %d %d", c.NumItems(), c.NumConsumers())
	}
	if len(c.Activity) != 80 || len(c.Favorites) != 200 {
		t.Fatal("metadata length wrong")
	}
	for _, v := range c.Items {
		if v.IsZero() {
			t.Fatal("empty item vector")
		}
	}
	for j, a := range c.Activity {
		if a < 1 {
			t.Fatalf("activity[%d] = %v < 1", j, a)
		}
	}
	for _, f := range c.Favorites {
		if f < 0 {
			t.Fatal("negative favorites")
		}
	}
}

func TestFlickrDeterministic(t *testing.T) {
	cfg := FlickrSmallConfig()
	cfg.NumItems, cfg.NumConsumers = 100, 40
	a := Flickr("a", cfg)
	b := Flickr("b", cfg)
	ga, gb := a.BuildGraph(1), b.BuildGraph(1)
	if ga.NumEdges() != gb.NumEdges() {
		t.Error("same config produced different graphs")
	}
}

func TestBuildGraphThresholdMonotone(t *testing.T) {
	cfg := FlickrSmallConfig()
	cfg.NumItems, cfg.NumConsumers, cfg.Seed = 150, 60, 11
	c := Flickr("t", cfg)
	prev := -1
	for _, sigma := range []float64{1, 2, 4, 8} {
		n := c.BuildGraph(sigma).NumEdges()
		if prev >= 0 && n > prev {
			t.Errorf("edges increased when sigma rose: %d -> %d", prev, n)
		}
		prev = n
	}
}

func TestBuildGraphMatchesDotProducts(t *testing.T) {
	cfg := FlickrSmallConfig()
	cfg.NumItems, cfg.NumConsumers, cfg.Seed = 60, 30, 13
	c := Flickr("t", cfg)
	const sigma = 2
	g := c.BuildGraph(sigma)
	// Every edge weight equals the dot product; every qualifying pair
	// appears.
	found := make(map[[2]int]float64)
	for _, e := range g.Edges() {
		found[[2]int{int(e.Item), int(e.Consumer) - g.NumItems()}] = e.Weight
	}
	for i, iv := range c.Items {
		for j, cv := range c.Consumers {
			dot := iv.Dot(cv)
			w, ok := found[[2]int{i, j}]
			if dot >= sigma {
				if !ok {
					t.Fatalf("pair (%d,%d) dot %v missing", i, j, dot)
				}
				if math.Abs(w-dot) > 1e-9 {
					t.Fatalf("pair (%d,%d) weight %v != dot %v", i, j, w, dot)
				}
			} else if ok {
				t.Fatalf("pair (%d,%d) dot %v below sigma included", i, j, dot)
			}
		}
	}
}

func TestApplyCapacities(t *testing.T) {
	cfg := FlickrSmallConfig()
	cfg.NumItems, cfg.NumConsumers, cfg.Seed = 80, 40, 17
	c := Flickr("t", cfg)
	g := c.BuildGraph(1)
	if err := c.ApplyCapacities(g, 2); err != nil {
		t.Fatal(err)
	}
	// Consumer capacities = max(1, 2*n(u)).
	for j := 0; j < g.NumConsumers(); j++ {
		want := 2 * c.Activity[j]
		if want < 1 {
			want = 1
		}
		if got := g.Capacity(g.ConsumerID(j)); got != want {
			t.Fatalf("b(c%d) = %v, want %v", j, got, want)
		}
	}
	// Item capacities positive.
	for i := 0; i < g.NumItems(); i++ {
		if g.Capacity(g.ItemID(i)) < 1 {
			t.Fatalf("b(t%d) = %v < 1", i, g.Capacity(g.ItemID(i)))
		}
	}
	// Size mismatch rejected.
	if err := c.ApplyCapacities(graph.NewBipartite(1, 1), 1); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestAnswersCorpusShape(t *testing.T) {
	cfg := AnswersScaledConfig()
	cfg.NumItems, cfg.NumConsumers, cfg.Seed = 300, 100, 23
	c := Answers("t", cfg)
	if c.Favorites != nil {
		t.Error("answers corpus must use constant item capacities")
	}
	// tf·idf + normalization: all similarities are cosines in [0, 1].
	g := c.BuildGraph(0)
	_, wmax := g.WeightRange()
	if wmax > 1+1e-9 {
		t.Errorf("cosine similarity %v > 1", wmax)
	}
	if g.NumEdges() == 0 {
		t.Error("no edges generated")
	}
	// Topic structure: the graph must be sparser than flickr's.
	density := float64(g.NumEdges()) / float64(c.NumItems()*c.NumConsumers())
	if density > 0.6 {
		t.Errorf("answers density %v suspiciously high", density)
	}
}

func TestAnswersCapacitiesConstantPerItem(t *testing.T) {
	cfg := AnswersScaledConfig()
	cfg.NumItems, cfg.NumConsumers, cfg.Seed = 120, 60, 29
	c := Answers("t", cfg)
	g := c.BuildGraph(0.01)
	if err := c.ApplyCapacities(g, 1); err != nil {
		t.Fatal(err)
	}
	first := g.Capacity(g.ItemID(0))
	for i := 1; i < g.NumItems(); i++ {
		if g.Capacity(g.ItemID(i)) != first {
			t.Fatal("question capacities not constant")
		}
	}
}

func TestTableStats(t *testing.T) {
	cfg := FlickrSmallConfig()
	cfg.NumItems, cfg.NumConsumers, cfg.Seed = 50, 20, 31
	c := Flickr("stats-test", cfg)
	s := c.TableStats(1)
	if s.Name != "stats-test" || s.NumItems != 50 || s.NumConsumers != 20 {
		t.Errorf("stats %+v", s)
	}
	if s.NumEdges != c.BuildGraph(1).NumEdges() {
		t.Error("edge count mismatch")
	}
}

func TestSyntheticGraph(t *testing.T) {
	g := Synthetic(SyntheticConfig{
		NumItems: 500, NumConsumers: 100, MeanDegree: 5,
		DegreeAlpha: 1.5, WeightScale: 1, CapacityAlpha: 1.2,
		CapacityMax: 50, Seed: 37,
	})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() < 500 {
		t.Errorf("too few edges: %d", g.NumEdges())
	}
	// Every node has a positive capacity.
	for v := 0; v < g.NumNodes(); v++ {
		if g.Capacity(graph.NodeID(v)) < 1 {
			t.Fatalf("capacity of %d below 1", v)
		}
	}
	// Degrees heavy-tailed: max degree well above the mean.
	var degs []float64
	for i := 0; i < g.NumItems(); i++ {
		degs = append(degs, float64(g.Degree(g.ItemID(i))))
	}
	s := stats.Summarize(degs)
	if s.Max < 3*s.Mean {
		t.Errorf("degree distribution not heavy-tailed: max=%v mean=%v", s.Max, s.Mean)
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	cfg := SyntheticConfig{NumItems: 100, NumConsumers: 50, MeanDegree: 4,
		DegreeAlpha: 1.5, WeightScale: 1, CapacityAlpha: 1.3, CapacityMax: 20, Seed: 5}
	a, b := Synthetic(cfg), Synthetic(cfg)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("nondeterministic synthetic graph")
	}
	for i := range a.Edges() {
		if a.Edge(i) != b.Edge(i) {
			t.Fatal("edge mismatch")
		}
	}
}
