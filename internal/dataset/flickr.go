package dataset

import (
	"math/rand"

	"repro/internal/vector"
)

// FlickrConfig parameterizes the flickr-style generator. Items are
// photos carrying a handful of tags; a consumer is a user whose vector
// is the multiset of tags on the photos they posted (Section 6: "we
// represent each photo by its tags, and each user by the set of all tags
// he or she has used").
type FlickrConfig struct {
	// NumItems and NumConsumers are the part sizes.
	NumItems     int
	NumConsumers int
	// Vocab is the tag vocabulary size.
	Vocab int
	// TagZipf is the Zipf exponent of tag popularity.
	TagZipf float64
	// TagsPerPhoto is the mean number of tags on a photo.
	TagsPerPhoto int
	// ActivityAlpha, ActivityMax shape the power-law photos-posted
	// counts n(u) (ParetoInt with xmin 1).
	ActivityAlpha float64
	ActivityMax   int
	// FavAlpha, FavMax shape the power-law favorite counts f(p).
	FavAlpha float64
	FavMax   int
	// Seed makes the corpus reproducible.
	Seed int64
}

// FlickrSmallConfig mirrors the paper's flickr-small dataset at its
// original size (Table 1: 2817 items, 526 consumers, ~550k positive
// pairs).
func FlickrSmallConfig() FlickrConfig {
	return FlickrConfig{
		NumItems:      2817,
		NumConsumers:  526,
		Vocab:         1200,
		TagZipf:       0.85,
		TagsPerPhoto:  6,
		ActivityAlpha: 1.3,
		ActivityMax:   150,
		FavAlpha:      1.2,
		FavMax:        400,
		Seed:          1,
	}
}

// FlickrLargeConfig mirrors flickr-large scaled down ~90× per side
// (Table 1: 373k items, 33k consumers; here 4200 items, 380 consumers)
// with the same items:consumers ratio (~11:1) and edge density (~16% of
// all pairs have positive similarity).
func FlickrLargeConfig() FlickrConfig {
	return FlickrConfig{
		NumItems:      4200,
		NumConsumers:  380,
		Vocab:         1600,
		TagZipf:       0.8,
		TagsPerPhoto:  6,
		ActivityAlpha: 1.1,
		ActivityMax:   400,
		FavAlpha:      1.05,
		FavMax:        2000,
		Seed:          2,
	}
}

// Flickr generates a flickr-style corpus: photos tagged by Zipf draws,
// users who posted a power-law number of photos (their vectors
// accumulate those photos' tags), and power-law favorite counts that
// drive the item capacities.
func Flickr(name string, cfg FlickrConfig) *Corpus {
	rng := rand.New(rand.NewSource(cfg.Seed))
	tags := NewZipf(rng, cfg.TagZipf, cfg.Vocab)

	drawPhoto := func() vector.Sparse {
		b := vector.NewBuilder()
		k := 1 + rng.Intn(2*cfg.TagsPerPhoto-1) // uniform 1..2m-1, mean m
		for t := 0; t < k; t++ {
			b.AddCount(vector.TermID(tags.Draw()))
		}
		return b.Vector()
	}

	c := &Corpus{
		Name:      name,
		Items:     make([]vector.Sparse, cfg.NumItems),
		Consumers: make([]vector.Sparse, cfg.NumConsumers),
		Activity:  make([]float64, cfg.NumConsumers),
		Favorites: make([]float64, cfg.NumItems),
	}
	for i := range c.Items {
		c.Items[i] = drawPhoto()
		c.Favorites[i] = float64(ParetoInt(rng, 1, cfg.FavMax, cfg.FavAlpha) - 1)
	}
	for j := range c.Consumers {
		n := ParetoInt(rng, 1, cfg.ActivityMax, cfg.ActivityAlpha)
		c.Activity[j] = float64(n)
		b := vector.NewBuilder()
		for p := 0; p < n; p++ {
			for _, e := range drawPhoto().Entries() {
				b.Add(e.Term, e.Weight)
			}
		}
		c.Consumers[j] = b.Vector()
	}
	return c
}

// FlickrSmall generates the flickr-small stand-in.
func FlickrSmall() *Corpus { return Flickr("flickr-small", FlickrSmallConfig()) }

// FlickrLarge generates the scaled flickr-large stand-in.
func FlickrLarge() *Corpus { return Flickr("flickr-large", FlickrLargeConfig()) }
