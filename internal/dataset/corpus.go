package dataset

import (
	"fmt"

	"repro/internal/capacity"
	"repro/internal/graph"
	"repro/internal/vector"
)

// Corpus is a generated dataset before matching: the term vectors of
// items and consumers plus the activity and quality proxies that drive
// capacities.
type Corpus struct {
	// Name identifies the dataset ("flickr-small", ...).
	Name string
	// Items holds one sparse term vector per item (photo tags,
	// question words).
	Items []vector.Sparse
	// Consumers holds one sparse term vector per consumer (the tags or
	// words of everything the user touched).
	Consumers []vector.Sparse
	// Activity holds the per-consumer activity proxy n(u) (photos
	// posted, answers written); consumer capacities are b(u) = α·n(u).
	Activity []float64
	// Favorites holds the per-item favorite counts f(p) for
	// favorites-proportional item capacities; nil means items get the
	// constant capacity B/|T| (the yahoo-answers policy).
	Favorites []float64
}

// NumItems returns |T|.
func (c *Corpus) NumItems() int { return len(c.Items) }

// NumConsumers returns |C|.
func (c *Corpus) NumConsumers() int { return len(c.Consumers) }

// BuildGraph materializes every item-consumer edge with dot-product
// similarity ≥ sigma as a bipartite graph (capacities unset; see
// ApplyCapacities). It scores pairs exactly with an inverted-index
// accumulator over the smaller side, which is the same join the
// MapReduce similarity join of internal/simjoin computes; experiments
// use whichever fits, and tests cross-check the two.
func (c *Corpus) BuildGraph(sigma float64) *graph.Bipartite {
	g := graph.NewBipartite(c.NumItems(), c.NumConsumers())
	if sigma <= 0 {
		sigma = 1e-12 // only strictly positive similarities become edges
	}

	// Inverted index over items: term -> (item, weight).
	type posting struct {
		doc int32
		w   float64
	}
	index := make(map[vector.TermID][]posting)
	for i, v := range c.Items {
		for _, e := range v.Entries() {
			index[e.Term] = append(index[e.Term], posting{doc: int32(i), w: e.Weight})
		}
	}

	scores := make([]float64, c.NumItems())
	touched := make([]int32, 0, 1024)
	for j, u := range c.Consumers {
		for _, e := range u.Entries() {
			for _, p := range index[e.Term] {
				if scores[p.doc] == 0 {
					touched = append(touched, p.doc)
				}
				scores[p.doc] += e.Weight * p.w
			}
		}
		for _, i := range touched {
			if scores[i] >= sigma {
				g.AddEdge(g.ItemID(int(i)), g.ConsumerID(j), scores[i])
			}
			scores[i] = 0
		}
		touched = touched[:0]
	}
	return g
}

// ApplyCapacities sets the Section-6 capacities on g for the given
// activity multiplier α: consumer capacities b(u) = α·n(u), and item
// capacities either favorites-proportional (flickr) or constant
// (yahoo-answers), splitting the consumer-side bandwidth B.
func (c *Corpus) ApplyCapacities(g *graph.Bipartite, alpha float64) error {
	if g.NumItems() != c.NumItems() || g.NumConsumers() != c.NumConsumers() {
		return fmt.Errorf("dataset: graph size mismatch (%d×%d vs corpus %d×%d)",
			g.NumItems(), g.NumConsumers(), c.NumItems(), c.NumConsumers())
	}
	bandwidth, err := capacity.ConsumerActivity(g, c.Activity, alpha)
	if err != nil {
		return err
	}
	if c.Favorites != nil {
		return capacity.FavoritesProportional(g, c.Favorites, bandwidth)
	}
	return capacity.ConstantPerItem(g, bandwidth)
}

// Stats summarizes a corpus for Table 1: part sizes and the number of
// non-zero-similarity pairs at the given threshold.
type Stats struct {
	Name         string
	NumItems     int
	NumConsumers int
	NumEdges     int
}

// TableStats builds the Table 1 row for this corpus.
func (c *Corpus) TableStats(sigma float64) Stats {
	g := c.BuildGraph(sigma)
	return Stats{
		Name:         c.Name,
		NumItems:     c.NumItems(),
		NumConsumers: c.NumConsumers(),
		NumEdges:     g.NumEdges(),
	}
}
