package dataset

import (
	"math/rand"

	"repro/internal/vector"
)

// AnswersConfig parameterizes the yahoo-answers-style generator. Items
// are open questions, consumers are answerers; both are bags of words
// over a topical vocabulary, tf·idf weighted (Section 6: "we represent
// users by the weighted set of words in their answers... apply tf·idf
// weighting. We treat questions similarly").
type AnswersConfig struct {
	NumItems     int
	NumConsumers int
	// Vocab is the stemmed-word vocabulary size.
	Vocab int
	// WordZipf is the Zipf exponent of word frequency.
	WordZipf float64
	// Topics is the number of latent topics; each document draws most
	// words from one topic's slice of the vocabulary, which produces
	// the sparse, clustered similarity structure of question-answer
	// text (and hence a much sparser graph than flickr, as in Table 1).
	Topics int
	// WordsPerQuestion is the mean word count of a question.
	WordsPerQuestion int
	// WordsPerAnswer is the mean word count of one answer.
	WordsPerAnswer int
	// ActivityAlpha, ActivityMax shape the power-law answers-written
	// counts n(u).
	ActivityAlpha float64
	ActivityMax   int
	Seed          int64
}

// AnswersScaledConfig mirrors yahoo-answers scaled down (Table 1: 4.85M
// questions, 1.15M users; here 5200 questions, 1100 users, keeping the
// ~4.2:1 ratio and sub-percent pair density).
func AnswersScaledConfig() AnswersConfig {
	return AnswersConfig{
		NumItems:         5200,
		NumConsumers:     1100,
		Vocab:            9000,
		WordZipf:         1.0,
		Topics:           60,
		WordsPerQuestion: 10,
		WordsPerAnswer:   20,
		ActivityAlpha:    1.2,
		ActivityMax:      300,
		Seed:             3,
	}
}

// Answers generates a yahoo-answers-style corpus. Each question belongs
// to a topic and draws words from that topic's vocabulary slice (with a
// small leak into the global vocabulary); each user answers a power-law
// number of questions concentrated on a few topics of interest. Raw
// counts are tf·idf reweighted, as the paper does.
func Answers(name string, cfg AnswersConfig) *Corpus {
	rng := rand.New(rand.NewSource(cfg.Seed))
	global := NewZipf(rng, cfg.WordZipf, cfg.Vocab)
	topicSize := cfg.Vocab / cfg.Topics
	topical := NewZipf(rng, cfg.WordZipf, topicSize)

	// drawDoc draws n words, 80% from the topic's slice, 20% global.
	drawDoc := func(topic, n int, b *vector.Builder) {
		base := topic * topicSize
		for w := 0; w < n; w++ {
			if rng.Float64() < 0.8 {
				b.AddCount(vector.TermID(base + topical.Draw()))
			} else {
				b.AddCount(vector.TermID(global.Draw()))
			}
		}
	}

	c := &Corpus{
		Name:      name,
		Items:     make([]vector.Sparse, cfg.NumItems),
		Consumers: make([]vector.Sparse, cfg.NumConsumers),
		Activity:  make([]float64, cfg.NumConsumers),
	}
	for i := range c.Items {
		topic := rng.Intn(cfg.Topics)
		b := vector.NewBuilder()
		n := 1 + rng.Intn(2*cfg.WordsPerQuestion-1)
		drawDoc(topic, n, b)
		c.Items[i] = b.Vector()
	}
	for j := range c.Consumers {
		n := ParetoInt(rng, 1, cfg.ActivityMax, cfg.ActivityAlpha)
		c.Activity[j] = float64(n)
		// Users answer within a few topics of interest.
		numTopics := 1 + rng.Intn(3)
		interests := make([]int, numTopics)
		for k := range interests {
			interests[k] = rng.Intn(cfg.Topics)
		}
		b := vector.NewBuilder()
		for a := 0; a < n; a++ {
			topic := interests[rng.Intn(numTopics)]
			words := 1 + rng.Intn(2*cfg.WordsPerAnswer-1)
			drawDoc(topic, words, b)
		}
		c.Consumers[j] = b.Vector()
	}

	// tf·idf over the union corpus, then split back, exactly as one
	// joint preprocessing pass would do.
	all := make([]vector.Sparse, 0, len(c.Items)+len(c.Consumers))
	all = append(all, c.Items...)
	all = append(all, c.Consumers...)
	weighted := vector.TFIDF(all)
	// Normalize to unit length so that similarities are cosines and σ
	// sweeps a [0,1]-comparable scale across datasets.
	weighted = vector.NormalizeAll(weighted)
	copy(c.Items, weighted[:len(c.Items)])
	copy(c.Consumers, weighted[len(c.Items):])
	return c
}

// YahooAnswers generates the scaled yahoo-answers stand-in.
func YahooAnswers() *Corpus { return Answers("yahoo-answers", AnswersScaledConfig()) }
