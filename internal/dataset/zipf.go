// Package dataset generates the synthetic stand-ins for the paper's
// proprietary corpora (flickr-small, flickr-large, yahoo-answers).
//
// The matching algorithms only observe a weighted bipartite graph and
// node capacities, so the generators aim to reproduce the statistical
// properties the paper's evaluation depends on, not the raw data:
// Zipf-distributed tag/term popularity (which yields the exponential-ish
// edge-similarity tails of Figure 6), power-law user activity and photo
// favorites (which yield the heavy-tailed capacity distributions of
// Figure 7), and the relative part sizes of Table 1 (items ≫ consumers
// for flickr; both large for yahoo-answers). flickr-small is generated
// at the paper's original size; the two large datasets are scaled down
// to laptop size with their shape parameters preserved (see DESIGN.md).
package dataset

import (
	"math"
	"math/rand"
	"sort"
)

// Zipf samples from a Zipf distribution over {0, ..., n-1} with
// P(i) ∝ 1/(i+1)^s for any exponent s > 0 (the stdlib sampler requires
// s > 1; tag popularity in social media typically has s ≈ 0.7–1.2, so
// both regimes are needed). Sampling is by binary search over the
// precomputed CDF: O(log n) per draw, deterministic given the source.
type Zipf struct {
	cdf []float64
	rng *rand.Rand
}

// NewZipf precomputes the distribution. It panics on invalid parameters.
func NewZipf(rng *rand.Rand, s float64, n int) *Zipf {
	if n < 1 || s <= 0 {
		panic("dataset: invalid zipf parameters")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += math.Pow(float64(i+1), -s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, rng: rng}
}

// Draw samples one rank.
func (z *Zipf) Draw() int {
	u := z.rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// N returns the support size.
func (z *Zipf) N() int { return len(z.cdf) }

// ParetoInt samples a discrete Pareto (power-law) value in [xmin, xmax]:
// the integer part of xmin·U^(-1/alpha) clamped to xmax. User activity
// (photos posted, answers written) and photo favorites follow such laws.
func ParetoInt(rng *rand.Rand, xmin, xmax int, alpha float64) int {
	if xmin < 1 {
		xmin = 1
	}
	if xmax < xmin {
		xmax = xmin
	}
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	x := int(float64(xmin) * math.Pow(u, -1/alpha))
	if x > xmax {
		x = xmax
	}
	if x < xmin {
		x = xmin
	}
	return x
}
