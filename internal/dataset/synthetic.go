package dataset

import (
	"math"
	"math/rand"

	"repro/internal/graph"
)

// SyntheticConfig parameterizes the direct edge-level generator, used by
// scale benchmarks that need graphs far larger than the vector pipeline
// can score quickly. It skips document vectors and draws the bipartite
// graph directly with the target statistical shape: power-law item
// degrees and exponentially distributed edge weights (the shape of
// Figure 6).
type SyntheticConfig struct {
	NumItems     int
	NumConsumers int
	// MeanDegree is the mean number of edges per item.
	MeanDegree int
	// DegreeAlpha shapes the power-law item degrees.
	DegreeAlpha float64
	// WeightScale is the mean of the exponential edge weights.
	WeightScale float64
	// CapacityAlpha, CapacityMax shape power-law consumer capacities;
	// item capacities split the bandwidth uniformly.
	CapacityAlpha float64
	CapacityMax   int
	Seed          int64
}

// Synthetic draws a random bipartite graph with power-law item degrees,
// exponential edge weights, and Section-4 capacities already applied.
func Synthetic(cfg SyntheticConfig) *graph.Bipartite {
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := graph.NewBipartite(cfg.NumItems, cfg.NumConsumers)

	if cfg.MeanDegree < 1 {
		cfg.MeanDegree = 1
	}
	if cfg.WeightScale <= 0 {
		cfg.WeightScale = 1
	}
	// Consumers are picked Zipf-style so popular consumers exist.
	pick := NewZipf(rng, 0.7, cfg.NumConsumers)
	perm := rng.Perm(cfg.NumConsumers) // decouple popularity from id order

	for i := 0; i < cfg.NumItems; i++ {
		deg := ParetoInt(rng, 1, 8*cfg.MeanDegree, cfg.DegreeAlpha)
		if deg > cfg.NumConsumers {
			deg = cfg.NumConsumers
		}
		seen := make(map[int]bool, deg)
		for len(seen) < deg {
			j := perm[pick.Draw()]
			if seen[j] {
				continue
			}
			seen[j] = true
			w := rng.ExpFloat64() * cfg.WeightScale
			if w <= 0 || math.IsInf(w, 0) {
				w = cfg.WeightScale
			}
			g.AddEdge(g.ItemID(i), g.ConsumerID(j), w)
		}
	}

	// Capacities: power-law consumer activity, uniform item split.
	var bandwidth float64
	for j := 0; j < cfg.NumConsumers; j++ {
		b := float64(ParetoInt(rng, 1, cfg.CapacityMax, cfg.CapacityAlpha))
		g.SetCapacity(g.ConsumerID(j), b)
		bandwidth += b
	}
	per := bandwidth / float64(cfg.NumItems)
	if per < 1 {
		per = 1
	}
	for i := 0; i < cfg.NumItems; i++ {
		g.SetCapacity(g.ItemID(i), per)
	}
	return g
}
