package dataset

import (
	"math/rand"
	"testing"
)

func BenchmarkFlickrGeneration(b *testing.B) {
	cfg := FlickrSmallConfig()
	cfg.NumItems, cfg.NumConsumers = 1000, 200
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		Flickr("bench", cfg)
	}
}

func BenchmarkAnswersGeneration(b *testing.B) {
	cfg := AnswersScaledConfig()
	cfg.NumItems, cfg.NumConsumers = 800, 200
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		Answers("bench", cfg)
	}
}

func BenchmarkBuildGraph(b *testing.B) {
	cfg := FlickrSmallConfig()
	cfg.NumItems, cfg.NumConsumers = 1000, 200
	c := Flickr("bench", cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.BuildGraph(2)
	}
}

func BenchmarkZipfDraw(b *testing.B) {
	z := NewZipf(rand.New(rand.NewSource(1)), 0.9, 50000)
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += z.Draw()
	}
	_ = sink
}

func BenchmarkParetoInt(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	var sink int
	for i := 0; i < b.N; i++ {
		sink += ParetoInt(rng, 1, 1000, 1.2)
	}
	_ = sink
}
