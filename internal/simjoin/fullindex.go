package simjoin

import (
	"context"
	"fmt"

	"repro/internal/mapreduce"
	"repro/internal/vector"
)

// JoinFullIndex computes the same join as Join but with a full (unpruned)
// inverted index: every term of every item is indexed, so probing
// generates every co-occurring pair as a candidate. This is the
// straightforward MapReduce join that prefix filtering improves upon —
// kept as the ablation baseline (BenchmarkAblationPrefixFilter measures
// the candidate and shuffle reduction, which is the contribution of
// Baraglia et al. that Section 5.1 builds on).
//
// Unlike Join, the candidate score can be accumulated exactly from the
// index (all terms are present), so verification needs no side access to
// the vectors: the probe job's reducers sum the per-term partial
// products directly.
func JoinFullIndex(ctx context.Context, items, consumers []vector.Sparse, sigma float64, opts Options) (*Result, error) {
	if sigma <= 0 {
		return nil, fmt.Errorf("simjoin: threshold must be positive, got %v", sigma)
	}
	driver := mapreduce.NewDriver(opts.MR)

	// Job 1: full inverted index over items.
	indexOut, err := mapreduce.RunJob(ctx, driver, "fulljoin-index",
		enumerate(items),
		func(i int32, d vector.Sparse, out mapreduce.Emitter[vector.TermID, posting]) error {
			for _, e := range d.Entries() {
				out.Emit(e.Term, posting{doc: i, w: e.Weight})
			}
			return nil
		},
		mapreduce.CollectValues[vector.TermID, posting]())
	if err != nil {
		return nil, fmt.Errorf("simjoin: full index job: %w", err)
	}
	index := make(map[vector.TermID][]posting, len(indexOut))
	var postings int64
	for _, p := range indexOut {
		index[p.Key] = p.Value
		postings += int64(len(p.Value))
	}

	// Job 2: probe with partial products; reduce by pair sums them to
	// the exact dot product.
	counters := mapreduce.NewCounters()
	probeOut, err := mapreduce.RunJob(ctx, driver, "fulljoin-probe",
		enumerate(consumers),
		func(j int32, c vector.Sparse, out mapreduce.Emitter[[2]int32, float64]) error {
			for _, e := range c.Entries() {
				for _, p := range index[e.Term] {
					out.Emit([2]int32{p.doc, j}, e.Weight*p.w)
				}
			}
			return nil
		},
		func(pair [2]int32, partials []float64, out mapreduce.Emitter[[2]int32, float64]) error {
			counters.Inc("candidates", 1)
			sim := 0.0
			for _, p := range partials {
				sim += p
			}
			if sim >= sigma {
				out.Emit(pair, sim)
			}
			return nil
		})
	if err != nil {
		return nil, fmt.Errorf("simjoin: full probe job: %w", err)
	}

	res := &Result{
		Rounds:         driver.Rounds(),
		Candidates:     counters.Get("candidates"),
		PostingEntries: postings,
		Shuffle:        driver.Total(),
	}
	for _, p := range probeOut {
		res.Edges = append(res.Edges, Edge{Item: p.Key[0], Consumer: p.Key[1], Sim: p.Value})
	}
	sortEdges(res.Edges)
	return res, nil
}
