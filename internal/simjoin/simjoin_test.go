package simjoin

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/mapreduce"
	"repro/internal/vector"
)

var testMR = Options{MR: mapreduce.Config{Mappers: 2, Reducers: 2}}

func vec(pairs ...float64) vector.Sparse {
	entries := make([]vector.Entry, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		entries = append(entries, vector.Entry{Term: vector.TermID(pairs[i]), Weight: pairs[i+1]})
	}
	return vector.FromEntries(entries)
}

func sameEdges(t *testing.T, got, want []Edge) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("edge count %d, want %d\ngot:  %v\nwant: %v", len(got), len(want), got, want)
	}
	for i := range got {
		if got[i].Item != want[i].Item || got[i].Consumer != want[i].Consumer {
			t.Fatalf("edge %d endpoints %v, want %v", i, got[i], want[i])
		}
		if math.Abs(got[i].Sim-want[i].Sim) > 1e-12 {
			t.Fatalf("edge %d sim %v, want %v", i, got[i].Sim, want[i].Sim)
		}
	}
}

func TestJoinTinyExample(t *testing.T) {
	items := []vector.Sparse{
		vec(1, 1, 2, 1), // matches c0 on terms 1,2
		vec(3, 2),       // matches c1 on term 3
		vec(9, 1),       // matches nothing
	}
	consumers := []vector.Sparse{
		vec(1, 1, 2, 2),
		vec(3, 3, 4, 1),
	}
	res, err := Join(context.Background(), items, consumers, 2.5, testMR)
	if err != nil {
		t.Fatal(err)
	}
	want := []Edge{
		{Item: 0, Consumer: 0, Sim: 3}, // 1*1 + 1*2
		{Item: 1, Consumer: 1, Sim: 6}, // 2*3
	}
	sameEdges(t, res.Edges, want)
	if res.Rounds != 2 {
		t.Errorf("Rounds = %d, want 2", res.Rounds)
	}
}

func TestJoinMatchesBruteForceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randVec := func(maxTerms int) vector.Sparse {
		n := 1 + rng.Intn(maxTerms)
		entries := make([]vector.Entry, 0, n)
		for k := 0; k < n; k++ {
			entries = append(entries, vector.Entry{
				Term:   vector.TermID(rng.Intn(40)),
				Weight: 0.1 + rng.Float64(),
			})
		}
		return vector.FromEntries(entries)
	}
	items := make([]vector.Sparse, 60)
	consumers := make([]vector.Sparse, 40)
	for i := range items {
		items[i] = randVec(8)
	}
	for j := range consumers {
		consumers[j] = randVec(12)
	}
	for _, sigma := range []float64{0.2, 0.5, 1, 2, 4} {
		res, err := Join(context.Background(), items, consumers, sigma, testMR)
		if err != nil {
			t.Fatalf("sigma=%v: %v", sigma, err)
		}
		sameEdges(t, res.Edges, BruteForce(items, consumers, sigma))
	}
}

func TestJoinPrunesCandidates(t *testing.T) {
	// With a high threshold, prefix filtering must generate strictly
	// fewer candidates than the co-occurrence join would.
	rng := rand.New(rand.NewSource(11))
	items := make([]vector.Sparse, 120)
	consumers := make([]vector.Sparse, 80)
	for i := range items {
		b := vector.NewBuilder()
		for k := 0; k < 6; k++ {
			b.Add(vector.TermID(rng.Intn(30)), 0.1+rng.Float64())
		}
		items[i] = b.Vector()
	}
	for j := range consumers {
		b := vector.NewBuilder()
		for k := 0; k < 10; k++ {
			b.Add(vector.TermID(rng.Intn(30)), 0.1+rng.Float64())
		}
		consumers[j] = b.Vector()
	}
	// Co-occurrence candidate count = pairs sharing >= 1 term.
	cooccur := int64(len(BruteForce(items, consumers, 1e-12)))
	res, err := Join(context.Background(), items, consumers, 3.0, testMR)
	if err != nil {
		t.Fatal(err)
	}
	if res.Candidates >= cooccur {
		t.Errorf("candidates %d not pruned below co-occurring pairs %d", res.Candidates, cooccur)
	}
	if res.PostingEntries <= 0 {
		t.Error("empty index despite matches")
	}
	sameEdges(t, res.Edges, BruteForce(items, consumers, 3.0))
}

func TestJoinRejectsNonPositiveThreshold(t *testing.T) {
	if _, err := Join(context.Background(), nil, nil, 0, testMR); err == nil {
		t.Error("sigma=0 accepted")
	}
	if _, err := Join(context.Background(), nil, nil, -1, testMR); err == nil {
		t.Error("sigma<0 accepted")
	}
}

func TestJoinEmptyCollections(t *testing.T) {
	res, err := Join(context.Background(), nil, []vector.Sparse{vec(1, 1)}, 1, testMR)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Edges) != 0 {
		t.Error("edges from empty item side")
	}
	res, err = Join(context.Background(), []vector.Sparse{vec(1, 1)}, nil, 1, testMR)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Edges) != 0 {
		t.Error("edges from empty consumer side")
	}
}

func TestJoinZeroVectorsNeverMatch(t *testing.T) {
	items := []vector.Sparse{{}, vec(1, 5)}
	consumers := []vector.Sparse{vec(1, 5), {}}
	res, err := Join(context.Background(), items, consumers, 1, testMR)
	if err != nil {
		t.Fatal(err)
	}
	want := []Edge{{Item: 1, Consumer: 0, Sim: 25}}
	sameEdges(t, res.Edges, want)
}

func TestJoinThresholdBoundaryInclusive(t *testing.T) {
	items := []vector.Sparse{vec(1, 2)}
	consumers := []vector.Sparse{vec(1, 3)}
	res, err := Join(context.Background(), items, consumers, 6, testMR)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Edges) != 1 {
		t.Error("pair exactly at threshold excluded")
	}
	res, err = Join(context.Background(), items, consumers, 6.0001, testMR)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Edges) != 0 {
		t.Error("pair below threshold included")
	}
}

func TestPrefixEntriesSoundBound(t *testing.T) {
	// Every pair found by brute force must share at least one indexed
	// (prefix) term — the correctness invariant of prefix filtering.
	rng := rand.New(rand.NewSource(3))
	items := make([]vector.Sparse, 50)
	consumers := make([]vector.Sparse, 50)
	for i := range items {
		b := vector.NewBuilder()
		for k := 0; k < 5; k++ {
			b.Add(vector.TermID(rng.Intn(25)), 0.2+rng.Float64())
		}
		items[i] = b.Vector()
	}
	for j := range consumers {
		b := vector.NewBuilder()
		for k := 0; k < 7; k++ {
			b.Add(vector.TermID(rng.Intn(25)), 0.2+rng.Float64())
		}
		consumers[j] = b.Vector()
	}
	const sigma = 1.5
	maxW := vector.MaxWeights(consumers)
	df := vector.DocumentFrequencies(consumers)
	for _, e := range BruteForce(items, consumers, sigma) {
		prefix := prefixEntries(items[e.Item], sigma, maxW, df)
		shared := false
		for _, pe := range prefix {
			if consumers[e.Consumer].Weight(pe.Term) > 0 {
				shared = true
				break
			}
		}
		if !shared {
			t.Fatalf("pair (%d,%d) sim=%v shares no prefix term: bound unsound",
				e.Item, e.Consumer, e.Sim)
		}
	}
}

func TestToGraph(t *testing.T) {
	edges := []Edge{{Item: 0, Consumer: 1, Sim: 0.5}, {Item: 2, Consumer: 0, Sim: 1.5}}
	g := ToGraph(edges, 3, 2)
	if g.NumEdges() != 2 || g.NumItems() != 3 || g.NumConsumers() != 2 {
		t.Errorf("graph shape wrong: %d edges", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestJoinOnGeneratedCorpusMatchesCorpusGraph(t *testing.T) {
	// The dataset package scores pairs with an exact inverted index;
	// the MapReduce join must find the same edges.
	cfg := dataset.FlickrSmallConfig()
	cfg.NumItems, cfg.NumConsumers, cfg.Seed = 150, 60, 42
	c := dataset.Flickr("mini", cfg)
	const sigma = 3
	res, err := Join(context.Background(), c.Items, c.Consumers, sigma, testMR)
	if err != nil {
		t.Fatal(err)
	}
	g := c.BuildGraph(sigma)
	if g.NumEdges() != len(res.Edges) {
		t.Fatalf("simjoin %d edges, corpus graph %d", len(res.Edges), g.NumEdges())
	}
	want := make(map[[2]int32]float64, g.NumEdges())
	for _, ge := range g.Edges() {
		want[[2]int32{int32(ge.Item), int32(int(ge.Consumer) - g.NumItems())}] = ge.Weight
	}
	for _, e := range res.Edges {
		w, ok := want[[2]int32{e.Item, e.Consumer}]
		if !ok {
			t.Fatalf("simjoin edge (%d,%d) missing from corpus graph", e.Item, e.Consumer)
		}
		if math.Abs(w-e.Sim) > 1e-9 {
			t.Fatalf("edge (%d,%d) weight %v vs %v", e.Item, e.Consumer, e.Sim, w)
		}
	}
}

// TestJoinIdenticalAcrossShuffleBackends runs the similarity join on a
// random corpus over both shuffle backends and requires identical edge
// sets: the partitioned, sort-grouped data path and the external-memory
// spill path must reproduce each other's candidate generation and
// verification exactly.
func TestJoinIdenticalAcrossShuffleBackends(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	randVec := func() vector.Sparse {
		entries := make([]vector.Entry, 0, 8)
		for term := 0; term < 40; term++ {
			if rng.Float64() < 0.15 {
				entries = append(entries, vector.Entry{
					Term:   vector.TermID(term),
					Weight: 0.25 + rng.Float64(),
				})
			}
		}
		return vector.FromEntries(entries)
	}
	items := make([]vector.Sparse, 50)
	consumers := make([]vector.Sparse, 40)
	for i := range items {
		items[i] = randVec()
	}
	for i := range consumers {
		consumers[i] = randVec()
	}
	ctx := context.Background()
	mem, err := Join(ctx, items, consumers, 1.0, Options{
		MR: mapreduce.Config{Mappers: 3, Reducers: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	spill, err := Join(ctx, items, consumers, 1.0, Options{
		MR: mapreduce.Config{
			Mappers: 3, Reducers: 3,
			Shuffle: mapreduce.ShuffleConfig{
				Backend:      mapreduce.ShuffleSpill,
				MemoryBudget: 64,
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mem.Edges) == 0 {
		t.Fatal("fixture produced no join edges; raise density")
	}
	sameEdges(t, spill.Edges, mem.Edges)
	if spill.Shuffle.SpilledRecords == 0 {
		t.Fatal("spill backend never spilled on the join fixture")
	}
}

// TestJoinChainedMatchesFlat pins the Dataset-chained join to the flat
// dataflow: identical edges (values bit for bit), candidate counts, and
// posting totals, with and without the spilling backend.
func TestJoinChainedMatchesFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	randVec := func(maxTerms int) vector.Sparse {
		n := 1 + rng.Intn(maxTerms)
		entries := make([]vector.Entry, 0, n)
		for k := 0; k < n; k++ {
			entries = append(entries, vector.Entry{
				Term:   vector.TermID(rng.Intn(30)),
				Weight: 0.1 + rng.Float64(),
			})
		}
		return vector.FromEntries(entries)
	}
	items := make([]vector.Sparse, 50)
	consumers := make([]vector.Sparse, 30)
	for i := range items {
		items[i] = randVec(7)
	}
	for j := range consumers {
		consumers[j] = randVec(10)
	}
	chained := Options{MR: mapreduce.Config{Mappers: 3, Reducers: 3}}
	flat := chained
	flat.MR.FlatChaining = true
	spill := chained
	spill.MR.Shuffle = mapreduce.ShuffleConfig{Backend: mapreduce.ShuffleSpill, MemoryBudget: 128}
	rc, err := Join(context.Background(), items, consumers, 0.8, chained)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := Join(context.Background(), items, consumers, 0.8, flat)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Join(context.Background(), items, consumers, 0.8, spill)
	if err != nil {
		t.Fatal(err)
	}
	for name, other := range map[string]*Result{"flat": rf, "spill": rs} {
		if len(rc.Edges) != len(other.Edges) {
			t.Fatalf("%s: edge counts differ: %d vs %d", name, len(rc.Edges), len(other.Edges))
		}
		for i := range rc.Edges {
			if rc.Edges[i] != other.Edges[i] {
				t.Fatalf("%s: edge %d differs: %+v vs %+v", name, i, rc.Edges[i], other.Edges[i])
			}
		}
		if rc.Candidates != other.Candidates || rc.PostingEntries != other.PostingEntries {
			t.Fatalf("%s: candidates/postings differ: %d/%d vs %d/%d", name,
				rc.Candidates, rc.PostingEntries, other.Candidates, other.PostingEntries)
		}
	}
}
