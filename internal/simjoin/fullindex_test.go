package simjoin

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/vector"
)

func randomCorpus(seed int64, nItems, nConsumers, vocab, maxTerms int) (items, consumers []vector.Sparse) {
	rng := rand.New(rand.NewSource(seed))
	gen := func() vector.Sparse {
		b := vector.NewBuilder()
		n := 1 + rng.Intn(maxTerms)
		for k := 0; k < n; k++ {
			b.Add(vector.TermID(rng.Intn(vocab)), 0.1+rng.Float64())
		}
		return b.Vector()
	}
	items = make([]vector.Sparse, nItems)
	consumers = make([]vector.Sparse, nConsumers)
	for i := range items {
		items[i] = gen()
	}
	for j := range consumers {
		consumers[j] = gen()
	}
	return items, consumers
}

func TestJoinFullIndexMatchesBruteForce(t *testing.T) {
	items, consumers := randomCorpus(19, 70, 50, 35, 9)
	for _, sigma := range []float64{0.3, 1, 2.5} {
		res, err := JoinFullIndex(context.Background(), items, consumers, sigma, testMR)
		if err != nil {
			t.Fatalf("sigma=%v: %v", sigma, err)
		}
		sameEdges(t, res.Edges, BruteForce(items, consumers, sigma))
	}
}

func TestJoinFullIndexMatchesPrefixJoin(t *testing.T) {
	items, consumers := randomCorpus(23, 90, 60, 40, 8)
	const sigma = 1.2
	full, err := JoinFullIndex(context.Background(), items, consumers, sigma, testMR)
	if err != nil {
		t.Fatal(err)
	}
	prefix, err := Join(context.Background(), items, consumers, sigma, testMR)
	if err != nil {
		t.Fatal(err)
	}
	sameEdges(t, prefix.Edges, full.Edges)
	// The whole point of prefix filtering: fewer candidates, smaller
	// index, less shuffle.
	if prefix.Candidates > full.Candidates {
		t.Errorf("prefix join generated MORE candidates: %d > %d",
			prefix.Candidates, full.Candidates)
	}
	if prefix.PostingEntries >= full.PostingEntries {
		t.Errorf("prefix index not smaller: %d >= %d",
			prefix.PostingEntries, full.PostingEntries)
	}
}

func TestJoinFullIndexExactScores(t *testing.T) {
	// Scores accumulated from partial products must equal real dots.
	items, consumers := randomCorpus(31, 40, 30, 20, 6)
	res, err := JoinFullIndex(context.Background(), items, consumers, 0.5, testMR)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Edges {
		want := items[e.Item].Dot(consumers[e.Consumer])
		if math.Abs(e.Sim-want) > 1e-9 {
			t.Fatalf("pair (%d,%d): accumulated %v, dot %v", e.Item, e.Consumer, e.Sim, want)
		}
	}
}

func TestJoinFullIndexRejectsNonPositiveSigma(t *testing.T) {
	if _, err := JoinFullIndex(context.Background(), nil, nil, 0, testMR); err == nil {
		t.Error("sigma=0 accepted")
	}
}
