package simjoin

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/mapreduce"
	"repro/internal/vector"
)

// TestJoinIdenticalOnDistBackend is the end-to-end similarity-join
// equivalence run of the distributed mode: two in-process workers over
// loopback must reproduce the memory backend's edge set exactly —
// values bit for bit — and the worker-side candidate counters must
// merge back into the same Candidates total the local closure counts.
func TestJoinIdenticalOnDistBackend(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	randVec := func() vector.Sparse {
		entries := make([]vector.Entry, 0, 8)
		for term := 0; term < 40; term++ {
			if rng.Float64() < 0.15 {
				entries = append(entries, vector.Entry{
					Term:   vector.TermID(term),
					Weight: 0.25 + rng.Float64(),
				})
			}
		}
		return vector.FromEntries(entries)
	}
	items := make([]vector.Sparse, 50)
	consumers := make([]vector.Sparse, 40)
	for i := range items {
		items[i] = randVec()
	}
	for i := range consumers {
		consumers[i] = randVec()
	}
	const sigma = 1.0
	RegisterDistJobs(items, consumers, sigma)

	var wg sync.WaitGroup
	cl, err := mapreduce.StartDistCluster(2, mapreduce.DistClusterOptions{
		Timeout: 30 * time.Second,
		OnListen: func(addr string) {
			for i := 0; i < 2; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					mapreduce.ServeDistWorker(context.Background(), addr)
				}()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { cl.Close(); wg.Wait() }()

	ctx := context.Background()
	mem, err := Join(ctx, items, consumers, sigma, Options{
		MR: mapreduce.Config{Mappers: 3, Reducers: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	dist, err := Join(ctx, items, consumers, sigma, Options{
		MR: mapreduce.Config{
			Mappers: 3, Reducers: 3,
			Shuffle: mapreduce.ShuffleConfig{Backend: mapreduce.ShuffleDist},
			Dist:    cl,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mem.Edges) == 0 {
		t.Fatal("fixture produced no join edges; raise density")
	}
	sameEdges(t, dist.Edges, mem.Edges)
	if dist.Candidates != mem.Candidates {
		t.Fatalf("candidate counters diverge: memory %d, dist %d (worker counters lost?)", mem.Candidates, dist.Candidates)
	}
	if dist.PostingEntries != mem.PostingEntries {
		t.Fatalf("posting totals diverge: memory %d, dist %d", mem.PostingEntries, dist.PostingEntries)
	}
	if dist.Shuffle.RemoteBytesOut == 0 {
		t.Fatal("dist join reports no remote traffic")
	}
}
