package simjoin

import (
	"encoding/binary"
	"fmt"
	"math"
)

// The index job shuffles posting values; this compact binary form lets
// the job run on the spilling shuffle backend of internal/mapreduce
// (postings have unexported fields, so the reflective and gob fallbacks
// of the spill codec do not apply). The probe job's [2]int32 keys and
// empty-struct values are covered by the engine's built-in scalar codec.

// MarshalBinary implements encoding.BinaryMarshaler for the spilling
// shuffle backend.
func (p posting) MarshalBinary() ([]byte, error) {
	buf := binary.AppendVarint(nil, int64(p.doc))
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.w)), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (p *posting) UnmarshalBinary(data []byte) error {
	doc, n := binary.Varint(data)
	if n <= 0 || len(data) != n+8 {
		return fmt.Errorf("simjoin: corrupt spilled posting (%d bytes)", len(data))
	}
	p.doc = int32(doc)
	p.w = math.Float64frombits(binary.LittleEndian.Uint64(data[n:]))
	return nil
}
