#!/bin/sh
# Compares two benchmark snapshots. Accepts either the JSON files
# produced by scripts/bench_baseline.sh or raw `go test -bench` output
# files. Uses benchstat when it is on PATH; otherwise prints a
# side-by-side table with ns/op and allocs/op ratios.
#
# Any benchmark whose allocs/op regresses by more than 10% is flagged
# with an ALLOC-REGRESSION line and the script exits non-zero, so CI
# (or a pre-merge check) can fail on reintroduced allocation churn
# even when wall-clock noise hides it.
#
# Usage: scripts/bench_compare.sh OLD NEW
#        scripts/bench_compare.sh BENCH_baseline.json BENCH_pr2.json
set -e

if [ $# -ne 2 ]; then
    echo "usage: $0 <old> <new>" >&2
    exit 2
fi
old=$1
new=$2

# Convert a snapshot to benchstat-compatible lines ("BenchmarkX N ns/op ..."),
# passing raw bench output through untouched.
to_bench() {
    case "$1" in
    *.json)
        # {"name": "BenchmarkX", "iterations": N, "ns_per_op": T,
        #  "bytes_per_op": B, "allocs_per_op": A} -> benchmark line
        sed -n 's/.*"name": "\([^"]*\)", "iterations": \([0-9]*\), "ns_per_op": \([0-9.e+]*\), "bytes_per_op": \([0-9]*\), "allocs_per_op": \([0-9]*\).*/\1-1 \2 \3 ns\/op \4 B\/op \5 allocs\/op/p' "$1"
        ;;
    *)
        grep '^Benchmark' "$1"
        ;;
    esac
}

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
to_bench "$old" >"$tmpdir/old.txt"
to_bench "$new" >"$tmpdir/new.txt"

if command -v benchstat >/dev/null 2>&1; then
    benchstat "$tmpdir/old.txt" "$tmpdir/new.txt"
else
    awk '
    FNR == NR {
        name = $1; sub(/-[0-9]+$/, "", name)
        ns[name] = $3; allocs[name] = $7
        next
    }
    {
        name = $1; sub(/-[0-9]+$/, "", name)
        if (!(name in ns)) {
            # A benchmark only the new snapshot records (a datapoint a
            # PR introduces, e.g. BenchmarkDistShuffle in BENCH_pr5):
            # report it instead of silently skipping, so new subsystems
            # enter the record the moment they land.
            printf "%-36s NEW        ns/op %12.0f                allocs/op %8d\n", name, $3, $7
            next
        }
        printf "%-36s ns/op %12.0f -> %12.0f (%5.2fx)   allocs/op %8d -> %8d (%5.2fx)\n",
            name, ns[name], $3, ($3 > 0 ? ns[name] / $3 : 0),
            allocs[name], $7, ($7 > 0 ? allocs[name] / $7 : 0)
    }
    ' "$tmpdir/old.txt" "$tmpdir/new.txt"
    echo "(ratios > 1.00x mean the new run is better; install benchstat for significance tests)"
fi

# Checkpoint-overhead gate: within the NEW snapshot, the dist chained
# rounds with checkpointing on (the default CheckpointEvery) must cost
# at most 10% more than with checkpointing off. This prices the whole
# fault-tolerance path — MsgCkpt mirror frames plus coordinator
# bookkeeping — and pins it as a bounded tax on every round.
awk '
{
    name = $1; sub(/-[0-9]+$/, "", name)
    if (name == "BenchmarkDistChainedCheckpoint/on") on = $3
    if (name == "BenchmarkDistChainedCheckpoint/off") off = $3
}
END {
    if (on > 0 && off > 0 && on > off * 1.10) {
        printf "CKPT-OVERHEAD BenchmarkDistChainedCheckpoint on=%.0f ns/op vs off=%.0f ns/op (+%.0f%%, limit 10%%)\n",
            on, off, (on / off - 1) * 100
        exit 1
    }
}
' "$tmpdir/new.txt" || {
    echo "checkpointing costs more than 10% over disabled (see CKPT-OVERHEAD line above)" >&2
    exit 1
}

# Scheduling-overhead gate: within the NEW snapshot, arming the elastic
# scheduling machinery (heartbeats, progress pongs, the health monitor,
# speculation ready to fire) on a healthy cluster must cost at most 5%
# over running with it disabled — for both the flat shuffle
# (BenchmarkDistShuffle sched vs nosched) and chained checkpointed
# rounds (BenchmarkDistChainedCheckpoint on-sched vs on). Detection has
# to be close to free when nothing is failing.
awk '
/BenchmarkDistShuffle\/sched/            { ssched = $3 }
/BenchmarkDistShuffle\/nosched/          { snone = $3 }
/BenchmarkDistChainedCheckpoint\/on-sched/ { csched = $3 }
/BenchmarkDistChainedCheckpoint\/on /      { con = $3 }
END {
    bad = 0
    if (ssched > 0 && snone > 0 && ssched > snone * 1.05) {
        printf "SCHED-OVERHEAD BenchmarkDistShuffle sched=%.0f ns/op vs nosched=%.0f ns/op (+%.0f%%, limit 5%%)\n",
            ssched, snone, (ssched / snone - 1) * 100
        bad = 1
    }
    if (csched > 0 && con > 0 && csched > con * 1.05) {
        printf "SCHED-OVERHEAD BenchmarkDistChainedCheckpoint on-sched=%.0f ns/op vs on=%.0f ns/op (+%.0f%%, limit 5%%)\n",
            csched, con, (csched / con - 1) * 100
        bad = 1
    }
    exit bad
}
' "$tmpdir/new.txt" || {
    echo "armed-but-idle scheduling costs more than 5% (see SCHED-OVERHEAD lines above)" >&2
    exit 1
}

# Journal-overhead gate: within the NEW snapshot, chained checkpointed
# rounds with the coordinator run journal on (every job result
# journaled, every round committed) must cost at most 10% more than the
# mirror-only configuration. Durable crash-resume has to stay a bounded
# tax on every round.
awk '
/BenchmarkDistChainedCheckpoint\/journal/ { jrnl = $3 }
/BenchmarkDistChainedCheckpoint\/on /     { con = $3 }
END {
    if (jrnl > 0 && con > 0 && jrnl > con * 1.10) {
        printf "JOURNAL-OVERHEAD BenchmarkDistChainedCheckpoint journal=%.0f ns/op vs on=%.0f ns/op (+%.0f%%, limit 10%%)\n",
            jrnl, con, (jrnl / con - 1) * 100
        exit 1
    }
}
' "$tmpdir/new.txt" || {
    echo "the run journal costs more than 10% over mirror-only checkpointing (see JOURNAL-OVERHEAD line above)" >&2
    exit 1
}

# Bytes-on-the-wire gate: codec v2 exists to shrink the bulk byte
# paths, so the benchmarks that measure them (the dist shuffle and the
# disk-bound spill) must not regress bytes/op by more than 10% against
# the old snapshot. B/op on these benches is dominated by the encoded
# frames and spill buffers, making it the stable proxy for wire and
# disk volume.
awk '
FNR == NR {
    name = $1; sub(/-[0-9]+$/, "", name)
    bytes[name] = $5
    next
}
/BenchmarkDistShuffle\/|BenchmarkShuffleBackendSpill10x/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    if (!(name in bytes)) next
    if ($5 > bytes[name] * 1.10) {
        printf "BYTES-REGRESSION %-36s B/op %12d -> %12d (+%.0f%%)\n",
            name, bytes[name], $5, ($5 / bytes[name] - 1) * 100
        bad = 1
    }
}
END { exit bad }
' "$tmpdir/old.txt" "$tmpdir/new.txt" || {
    echo "bytes/op regressed by more than 10% on a byte-path benchmark (see BYTES-REGRESSION lines above)" >&2
    exit 1
}

# Allocation-regression gate: >10% more allocs/op than the old snapshot
# fails the comparison (wall clock is noisy on shared runners;
# allocation counts are deterministic, so this catches real churn).
awk '
FNR == NR {
    name = $1; sub(/-[0-9]+$/, "", name)
    allocs[name] = $7
    next
}
{
    name = $1; sub(/-[0-9]+$/, "", name)
    if (!(name in allocs)) next
    if ($7 > allocs[name] * 1.10 && $7 - allocs[name] > 2) {
        if (allocs[name] > 0)
            printf "ALLOC-REGRESSION %-36s allocs/op %8d -> %8d (+%.0f%%)\n",
                name, allocs[name], $7, ($7 / allocs[name] - 1) * 100
        else
            printf "ALLOC-REGRESSION %-36s allocs/op %8d -> %8d (was allocation-free)\n",
                name, allocs[name], $7
        bad = 1
    }
}
END { exit bad }
' "$tmpdir/old.txt" "$tmpdir/new.txt" || {
    echo "allocs/op regressed by more than 10% (see ALLOC-REGRESSION lines above)" >&2
    exit 1
}
