#!/bin/sh
# Runs the repository's static checks exactly as CI's lint job does:
# gofmt (diff-clean), go vet, and cmd/repolint's invariant analyzers
# (determinism, noretain, poolpair, msgexhaustive, errdrop — see the
# "Invariants & static analysis" section of docs/ARCHITECTURE.md).
#
# Usage: scripts/lint.sh [package selectors...]
#        scripts/lint.sh                       # whole module
#        scripts/lint.sh ./internal/mapreduce  # repolint on one package
#
# Selectors are passed to repolint only; gofmt and vet always cover
# the whole tree. Exits non-zero on the first failing check, so it
# works as a pre-PR gate: findings are suppressed one line at a time
# with `//lint:allow <rule> — <reason>` (run `go run ./cmd/repolint
# -list` for the rules; stale or reasonless suppressions are findings
# themselves).
set -e
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "lint.sh: gofmt wants to reformat:" >&2
    echo "$unformatted" >&2
    echo "lint.sh: run: gofmt -w ." >&2
    exit 1
fi

go vet ./...

go run ./cmd/repolint "$@"

echo "lint.sh: gofmt, vet, and repolint all clean"
