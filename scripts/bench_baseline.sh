#!/bin/sh
# Regenerates BENCH_baseline.json: benchmarks over the MapReduce engine
# and the matching core, parsed into JSON so future PRs can diff
# performance. Runs the whole suite three times as separate
# *interleaved* invocations (not -count=3, which groups a benchmark's
# repeats consecutively and lets slow machine drift skew the
# within-snapshot ratios bench_compare.sh gates on) and records each
# benchmark's minimum — the run least disturbed by scheduler and cache
# noise. Observed run-to-run spread on a shared machine is well past
# the 5% scheduling gate, so single-shot numbers are not comparable.
# Usage: scripts/bench_baseline.sh > BENCH_baseline.json
set -e
cd "$(dirname "$0")/.."

for _ in 1 2 3; do
    go test -run '^$' -bench . -benchmem ./internal/mapreduce/ ./internal/core/
done |
awk '
/^cpu:/ { cpu = substr($0, 6); sub(/^ */, "", cpu) }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    if (!(name in ns)) {
        order[++n] = name
        it[name] = $2; ns[name] = $3; by[name] = $5; al[name] = $7
    } else if ($3 + 0 < ns[name] + 0) {
        it[name] = $2; ns[name] = $3; by[name] = $5; al[name] = $7
    }
}
END {
    print "{"
    printf "  \"command\": \"go test -run ^$ -bench . -benchmem ./internal/mapreduce/ ./internal/core/ (min of 3 interleaved runs)\",\n"
    print "  \"benchmarks\": ["
    for (i = 1; i <= n; i++) {
        name = order[i]
        printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}%s\n",
            name, it[name], ns[name], by[name], al[name], (i < n ? "," : "")
    }
    print "  ],"
    printf "  \"cpu\": \"%s\"\n", cpu
    print "}"
}
'
