#!/bin/sh
# Regenerates BENCH_baseline.json: one benchmark run over the MapReduce
# engine and the matching core, parsed into JSON so future PRs can diff
# performance. Usage: scripts/bench_baseline.sh > BENCH_baseline.json
set -e
cd "$(dirname "$0")/.."

go test -run '^$' -bench . -benchmem ./internal/mapreduce/ ./internal/core/ |
awk '
BEGIN {
    print "{"
    printf "  \"command\": \"go test -run ^$ -bench . -benchmem ./internal/mapreduce/ ./internal/core/\",\n"
    first = 1
}
/^cpu:/ { cpu = substr($0, 6); sub(/^ */, "", cpu) }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    if (!first) printf ",\n"
    first = 0
    printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, $2, $3, $5, $7
}
END {
    print "\n  ],"
    printf "  \"cpu\": \"%s\"\n", cpu
    print "}"
}
/^goos:/ && !printed { print "  \"benchmarks\": ["; printed = 1 }
'
