package socialmatch

// End-to-end integration tests: the full system path (generate corpus →
// similarity join → capacities → match) plus cross-checks between the
// file format, the algorithms, and the exact oracle.

import (
	"bytes"
	"context"
	"math"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/simjoin"
)

// miniCorpus builds a small but realistic flickr-style corpus.
func miniCorpus(seed int64) *dataset.Corpus {
	cfg := dataset.FlickrSmallConfig()
	cfg.NumItems, cfg.NumConsumers, cfg.Seed = 250, 70, seed
	return dataset.Flickr("integration", cfg)
}

func TestEndToEndAllAlgorithmsOnGeneratedCorpus(t *testing.T) {
	ctx := context.Background()
	c := miniCorpus(5)
	const sigma = 3
	jr, err := simjoin.Join(ctx, c.Items, c.Consumers, sigma, simjoin.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := simjoin.ToGraph(jr.Edges, c.NumItems(), c.NumConsumers())
	if err := c.ApplyCapacities(g, 1); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() == 0 {
		t.Fatal("no candidate edges")
	}

	values := map[Algorithm]float64{}
	for _, alg := range Algorithms() {
		res, err := Match(ctx, g.Clone(), Options{Algorithm: alg, Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		slack := 1.0
		if alg == StackMRAlgorithm || alg == StackGreedyMRAlgorithm {
			slack = 2 // eps defaults to 1
		}
		if err := res.Matching.Validate(slack); err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		values[alg] = res.Matching.Value()
	}

	// Quality ordering sanity: greedy family ≥ stack family / 2 here
	// (far looser than observed, tight enough to catch regressions).
	if values[GreedyMRAlgorithm] < values[StackMRAlgorithm]/2 {
		t.Errorf("GreedyMR %v unexpectedly far below StackMR %v",
			values[GreedyMRAlgorithm], values[StackMRAlgorithm])
	}
	// GreedyMR equals centralized greedy on distinct weights.
	if math.Abs(values[GreedyMRAlgorithm]-values[GreedyAlgorithm]) > 1e-6 {
		t.Errorf("GreedyMR %v != Greedy %v", values[GreedyMRAlgorithm], values[GreedyAlgorithm])
	}
}

func TestEndToEndGraphFileRoundTrip(t *testing.T) {
	ctx := context.Background()
	c := miniCorpus(7)
	g := c.BuildGraph(4)
	if err := c.ApplyCapacities(g, 2); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := graph.Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := graph.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The matching on the round-tripped graph must agree exactly
	// (weights survive the text format at full precision for these
	// integer-ish values).
	a, err := Match(ctx, g, Options{Algorithm: GreedyAlgorithm})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Match(ctx, back, Options{Algorithm: GreedyAlgorithm})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Matching.Value()-b.Matching.Value()) > 1e-9 {
		t.Errorf("value changed across file round trip: %v -> %v",
			a.Matching.Value(), b.Matching.Value())
	}
}

func TestEndToEndAgainstExactOracle(t *testing.T) {
	// On a small corpus the exact optimum is computable; all
	// approximation guarantees must hold on the real pipeline output,
	// not just on random graphs.
	ctx := context.Background()
	cfg := dataset.FlickrSmallConfig()
	cfg.NumItems, cfg.NumConsumers, cfg.Seed = 60, 25, 11
	c := dataset.Flickr("oracle", cfg)
	g := c.BuildGraph(3)
	if err := c.ApplyCapacities(g, 1); err != nil {
		t.Fatal(err)
	}
	_, opt, err := flow.MaxWeightBMatching(g)
	if err != nil {
		t.Fatal(err)
	}
	if opt <= 0 {
		t.Fatal("trivial oracle optimum")
	}
	greedy, err := Match(ctx, g.Clone(), Options{Algorithm: GreedyMRAlgorithm})
	if err != nil {
		t.Fatal(err)
	}
	if greedy.Matching.Value() < opt/2-1e-9 {
		t.Errorf("GreedyMR %v < OPT/2 (%v)", greedy.Matching.Value(), opt/2)
	}
	stack, err := Match(ctx, g.Clone(), Options{Algorithm: StackMRAlgorithm, Eps: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stack.Matching.Value() < opt/7-1e-9 {
		t.Errorf("StackMR %v < OPT/7 (%v)", stack.Matching.Value(), opt/7)
	}
}

func TestParallelEdgesSupported(t *testing.T) {
	// Two parallel edges between the same pair count separately against
	// capacities — the b-matching semantics over multigraphs.
	ctx := context.Background()
	g := NewGraph(1, 1)
	g.SetCapacity(0, 2)
	g.SetCapacity(1, 2)
	g.AddEdge(0, 1, 1.0)
	g.AddEdge(0, 1, 0.5)
	for _, alg := range []Algorithm{GreedyAlgorithm, GreedyMRAlgorithm} {
		res, err := Match(ctx, g.Clone(), Options{Algorithm: alg})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if res.Matching.Size() != 2 {
			t.Errorf("%s: matched %d parallel edges, want 2", alg, res.Matching.Size())
		}
	}
	picked, value, err := flow.MaxWeightBMatching(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(picked) != 2 || math.Abs(value-1.5) > 1e-9 {
		t.Errorf("flow on multigraph: %v %v", picked, value)
	}
}

func TestStackMRViolationMetricsOnPipeline(t *testing.T) {
	ctx := context.Background()
	c := miniCorpus(13)
	g := c.BuildGraph(2)
	if err := c.ApplyCapacities(g, 2); err != nil {
		t.Fatal(err)
	}
	res, err := core.StackMR(ctx, g, core.StackOptions{Eps: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// ε′ small (paper: 0-6%) and stretch within (1+ε).
	if v := res.Matching.Violation(); v > 0.06 {
		t.Errorf("eps' = %v above the paper's observed range", v)
	}
	if f := res.Matching.MaxViolationFactor(); f > 2+1e-9 {
		t.Errorf("stretch %v beyond 1+eps", f)
	}
}

// TestSpillBackendMatchesMemoryBackendAt10x is the external-memory
// acceptance test: a matching job whose per-round shuffle volume exceeds
// the configured memory budget by at least 10x must complete on the
// spilling shuffle backend and produce the exact matching the in-memory
// backend produces.
func TestSpillBackendMatchesMemoryBackendAt10x(t *testing.T) {
	ctx := context.Background()
	g := graph.RandomBipartite(graph.RandomConfig{
		NumItems:     300,
		NumConsumers: 200,
		EdgeProb:     0.08,
		MaxWeight:    2,
		MaxCapacity:  3,
		Seed:         17,
	})
	const budget = 500

	mem, err := Match(ctx, g.Clone(), Options{Algorithm: GreedyMRAlgorithm})
	if err != nil {
		t.Fatal(err)
	}
	spill, err := Match(ctx, g.Clone(), Options{
		Algorithm:           GreedyMRAlgorithm,
		Shuffle:             ShuffleSpill,
		ShuffleMemoryBudget: budget,
	})
	if err != nil {
		t.Fatal(err)
	}

	// The budget must really be exceeded >= 10x by the shuffle volume
	// of at least one round (the first GreedyMR round moves ~2 records
	// per live edge plus one per node).
	maxRound := int64(0)
	for _, rs := range spill.RoundStats {
		if rs.ShuffleRecords > maxRound {
			maxRound = rs.ShuffleRecords
		}
	}
	if maxRound < 10*budget {
		t.Fatalf("largest round shuffled %d records, want >= %d for a 10x stress",
			maxRound, 10*budget)
	}
	if spill.Shuffle.SpilledRecords == 0 {
		t.Fatal("spilling backend never spilled")
	}
	if !reflect.DeepEqual(mem.Matching.Edges(), spill.Matching.Edges()) {
		t.Fatalf("spill matching (value %v) differs from memory matching (value %v)",
			spill.Matching.Value(), mem.Matching.Value())
	}
	t.Logf("10x stress: max round shuffle=%d, spilled=%d records in %d runs (budget %d)",
		maxRound, spill.Shuffle.SpilledRecords, spill.Shuffle.SpillRuns, budget)
}

// TestPipelineRunsOnSpillBackend drives the whole paper pipeline
// (similarity join + capacities + matching) on the spilling backend.
func TestPipelineRunsOnSpillBackend(t *testing.T) {
	ctx := context.Background()
	c := miniCorpus(5)
	run := func(opts Options) *Report {
		rep, err := Pipeline{Sigma: 3, Match: opts}.Run(ctx, c.Items, c.Consumers, c.Activity)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	mem := run(Options{Algorithm: GreedyMRAlgorithm})
	spill := run(Options{
		Algorithm:           GreedyMRAlgorithm,
		Shuffle:             ShuffleSpill,
		ShuffleMemoryBudget: 64,
	})
	if !reflect.DeepEqual(mem, spill) {
		t.Fatalf("pipeline reports differ across shuffle backends:\nmemory: %+v\nspill:  %+v", mem, spill)
	}
}
