// Quickstart: build a small item-consumer graph by hand, set capacities,
// and match with GreedyMR.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	socialmatch "repro"
)

func main() {
	// Three photos to feature, two users. Edge weights are relevance
	// scores (e.g. tag-vector dot products).
	g := socialmatch.NewGraph(3, 2)

	alice := g.ConsumerID(0)
	bob := g.ConsumerID(1)

	// Alice logs in often: show her up to 2 items. Bob gets 1.
	g.SetCapacity(alice, 2)
	g.SetCapacity(bob, 1)
	// Every photo may be shown at most twice in this phase.
	for i := 0; i < 3; i++ {
		g.SetCapacity(g.ItemID(i), 2)
	}

	g.AddEdge(g.ItemID(0), alice, 0.9) // sunset photo, Alice loves sunsets
	g.AddEdge(g.ItemID(0), bob, 0.4)
	g.AddEdge(g.ItemID(1), alice, 0.7)
	g.AddEdge(g.ItemID(1), bob, 0.8) // street shot, Bob's favourite genre
	g.AddEdge(g.ItemID(2), alice, 0.3)

	res, err := socialmatch.Match(context.Background(), g, socialmatch.Options{
		Algorithm: socialmatch.GreedyMRAlgorithm,
	})
	if err != nil {
		log.Fatal(err)
	}

	names := []string{"alice", "bob"}
	fmt.Printf("matched %d edges, total relevance %.2f, in %d MapReduce rounds\n",
		res.Matching.Size(), res.Matching.Value(), res.Rounds)
	for _, e := range res.Matching.Edges() {
		fmt.Printf("  show photo %d to %s (relevance %.2f)\n",
			int(e.Item), names[int(e.Consumer)-g.NumItems()], e.Weight)
	}
}
