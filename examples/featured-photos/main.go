// Featured-photos: the flickr scenario of the paper's introduction. A
// photo-sharing site wants a "featured item" component: each time users
// log in they see photos matched to their tag profile, no user is
// overwhelmed, and good photos (many favorites) get more exposure.
//
// The example generates a flickr-like corpus, builds the candidate graph
// at a similarity threshold, assigns the Section-4 capacities, and
// compares the three MapReduce matchers — including GreedyMR's any-time
// property (stop it early, ship the feasible partial solution).
//
//	go run ./examples/featured-photos
package main

import (
	"context"
	"fmt"
	"log"

	socialmatch "repro"
	"repro/internal/dataset"
)

func main() {
	ctx := context.Background()

	// A small flickr-like world: 600 photos, 120 users.
	cfg := dataset.FlickrSmallConfig()
	cfg.NumItems, cfg.NumConsumers, cfg.Seed = 600, 120, 7
	corpus := dataset.Flickr("featured-photos", cfg)

	// Candidate edges: pairs with tag-overlap similarity >= 3.
	const sigma = 3
	g := corpus.BuildGraph(sigma)
	// Capacities: users see items in proportion to their activity
	// (alpha=1); photos share bandwidth by favorites.
	if err := corpus.ApplyCapacities(g, 1); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("candidate graph: %d photos, %d users, %d edges (sigma=%g)\n\n",
		g.NumItems(), g.NumConsumers(), g.NumEdges(), float64(sigma))

	for _, alg := range []socialmatch.Algorithm{
		socialmatch.GreedyMRAlgorithm,
		socialmatch.StackMRAlgorithm,
		socialmatch.StackGreedyMRAlgorithm,
	} {
		res, err := socialmatch.Match(ctx, g.Clone(), socialmatch.Options{
			Algorithm: alg, Eps: 1, Seed: 11,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s value=%9.1f matches=%5d rounds=%3d violation=%.4f\n",
			alg, res.Matching.Value(), res.Matching.Size(), res.Rounds,
			res.Matching.Violation())
	}

	// The any-time property (paper Section 5.4): GreedyMR keeps a
	// feasible solution at every round, so the site can start
	// delivering immediately and refine in the background.
	fmt.Println("\nGreedyMR any-time snapshots:")
	full, err := socialmatch.Match(ctx, g.Clone(), socialmatch.Options{})
	if err != nil {
		log.Fatal(err)
	}
	final := full.Matching.Value()
	for i, v := range full.ValueTrace {
		if i == 0 || i == len(full.ValueTrace)/4 || i == len(full.ValueTrace)/2 || i == len(full.ValueTrace)-1 {
			fmt.Printf("  after round %2d: %5.1f%% of final value\n", i+1, 100*v/final)
		}
	}
}
