// Phased-delivery: the operating model of the paper's Section 4
// ("Scenario"). The application runs in consecutive phases; before phase
// i starts, it tentatively allocates the items produced during phase i-1
// (plus the leftovers that were never delivered) to the consumers
// expected to be active in phase i.
//
// This example simulates four phases of a content site: each phase new
// items arrive, consumer activity estimates change, capacities are
// recomputed from the fresh estimates, and a new b-matching is computed.
// Undelivered items (matched to nobody) roll over to the next phase.
//
//	go run ./examples/phased-delivery
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	socialmatch "repro"
	"repro/internal/capacity"
	"repro/internal/dataset"
	"repro/internal/vector"
)

const (
	numConsumers  = 80
	itemsPerPhase = 150
	phases        = 4
	sigma         = 3.0
)

func main() {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(99))
	tags := dataset.NewZipf(rng, 0.9, 500)

	// Stable consumer population with per-phase activity estimates.
	consumerVecs := make([]vector.Sparse, numConsumers)
	for j := range consumerVecs {
		b := vector.NewBuilder()
		for k := 0; k < 25; k++ {
			b.AddCount(vector.TermID(tags.Draw()))
		}
		consumerVecs[j] = b.Vector()
	}

	newItem := func() vector.Sparse {
		b := vector.NewBuilder()
		for k := 0; k < 6; k++ {
			b.AddCount(vector.TermID(tags.Draw()))
		}
		return b.Vector()
	}

	var backlog []vector.Sparse // undelivered items roll over
	for phase := 1; phase <= phases; phase++ {
		// Items for this phase: last phase's production + backlog.
		items := append([]vector.Sparse{}, backlog...)
		for i := 0; i < itemsPerPhase; i++ {
			items = append(items, newItem())
		}

		// Fresh activity estimates (e.g. from the previous phase's
		// logs): expected logins per consumer this phase.
		activity := make([]float64, numConsumers)
		for j := range activity {
			activity[j] = float64(1 + rng.Intn(6))
		}

		// Build candidate edges and capacities for this phase.
		g := graphFromVectors(items, consumerVecs)
		bandwidth, err := capacity.ConsumerActivity(g, activity, 1)
		if err != nil {
			log.Fatal(err)
		}
		if err := capacity.UniformItems(g, bandwidth); err != nil {
			log.Fatal(err)
		}

		res, err := socialmatch.Match(ctx, g, socialmatch.Options{
			Algorithm: socialmatch.GreedyMRAlgorithm,
		})
		if err != nil {
			log.Fatal(err)
		}

		// Items with no delivery roll over to the next phase.
		delivered := make([]bool, len(items))
		for _, e := range res.Matching.Edges() {
			delivered[int(e.Item)] = true
		}
		var next []vector.Sparse
		for i, d := range delivered {
			if !d {
				next = append(next, items[i])
			}
		}
		fmt.Printf("phase %d: %4d items (%3d rolled over) | %5d candidate edges | "+
			"matched %4d pairs, value %8.1f, %2d MR rounds | %3d undelivered\n",
			phase, len(items), len(backlog), g.NumEdges(),
			res.Matching.Size(), res.Matching.Value(), res.Rounds, len(next))
		backlog = next
	}
}

// graphFromVectors scores all item-consumer pairs and keeps those above
// the similarity threshold.
func graphFromVectors(items, consumers []vector.Sparse) *socialmatch.Graph {
	g := socialmatch.NewGraph(len(items), len(consumers))
	for i, iv := range items {
		for j, cv := range consumers {
			if sim := iv.Dot(cv); sim >= sigma {
				g.AddEdge(g.ItemID(i), g.ConsumerID(j), sim)
			}
		}
	}
	return g
}
