// Question-routing: the Yahoo! Answers scenario. Open questions are
// proposed to users whose past answers suggest they can answer them
// (paper Section 6: "The motivating application is to propose unanswered
// questions to users").
//
// Unlike the other examples this one runs the entire text pipeline on
// raw English strings: tokenization, stop-word removal, Porter stemming,
// tf·idf weighting, the MapReduce similarity join, and finally the
// b-matching — i.e. every substrate of the reproduction in one pass.
//
//	go run ./examples/question-routing
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	socialmatch "repro"
	"repro/internal/text"
	"repro/internal/vector"
)

// Open questions awaiting answers.
var questions = []string{
	"How do I sharpen photos taken at night with a cheap camera?",
	"What lens should I buy for portrait photography on a budget?",
	"Why does my sourdough bread collapse after baking in the oven?",
	"Best way to knead dough for pizza without a stand mixer?",
	"How can I train my dog to stop barking at the mailman?",
	"Is it safe to feed my dog raw chicken bones?",
	"Which programming language should a beginner learn first?",
	"How do I debug a memory leak in a long running program?",
}

// Each user's past answers, concatenated: their expertise profile.
var userAnswers = map[string]string{
	"ansel": `Shooting at night requires a tripod and long exposures.
		Use a fast lens and raise the ISO carefully; photography at night
		rewards patience. For portraits, prime lenses give sharper photos.`,
	"julia": `Bread collapses when the dough is overproofed. Knead the
		dough until the gluten develops, proof the sourdough slowly in
		the fridge, and bake with steam in a hot oven.`,
	"cesar": `Dogs bark at the mailman because of territorial instinct.
		Train with positive reinforcement and treats. Never feed a dog
		cooked bones; raw bones are safer but supervise chewing.`,
	"grace": `Start with a language that has a gentle learning curve and
		a good debugger. Memory leaks in a program are found by profiling
		allocations while the program runs.`,
	"lurker": `I mostly read and never answer anything interesting.`,
}

func main() {
	// 1. Text pipeline: tokenize, drop stop words, stem, count terms.
	vocab := text.NewVocabulary()
	toVector := func(doc string) vector.Sparse {
		b := vector.NewBuilder()
		for _, tok := range text.Preprocess(doc) {
			b.AddCount(vector.TermID(vocab.ID(tok)))
		}
		return b.Vector()
	}
	items := make([]vector.Sparse, len(questions))
	for i, q := range questions {
		items[i] = toVector(q)
	}
	userNames := make([]string, 0, len(userAnswers))
	for name := range userAnswers {
		userNames = append(userNames, name)
	}
	// Deterministic order for the demo output.
	sort.Strings(userNames)
	consumers := make([]vector.Sparse, len(userNames))
	activity := make([]float64, len(userNames))
	for j, name := range userNames {
		consumers[j] = toVector(userAnswers[name])
		// Activity proxy n(u): length of the user's answer history.
		activity[j] = float64(consumers[j].Len())
	}

	// 2. tf·idf over the joint corpus, then unit-normalize so the join
	// threshold is a cosine.
	all := append(append([]vector.Sparse{}, items...), consumers...)
	weighted := vector.NormalizeAll(vector.TFIDF(all))
	items = weighted[:len(items)]
	consumers = weighted[len(items):]

	// 3. Similarity join + capacities + matching, via the pipeline.
	rep, err := socialmatch.Pipeline{
		Sigma: 0.08, // cosine threshold for candidate edges
		Alpha: 0.2,  // each user gets about n(u)/5 proposals
		Match: socialmatch.Options{Algorithm: socialmatch.GreedyMRAlgorithm},
	}.Run(context.Background(), items, consumers, activity)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("vocabulary: %d stems; candidate edges: %d (join in %d MR rounds)\n",
		vocab.Size(), rep.CandidateEdges, rep.JoinRounds)
	fmt.Printf("matched %d question-user pairs, total relevance %.3f, %d match rounds\n\n",
		len(rep.Assignments), rep.Value, rep.MatchRounds)
	for _, a := range rep.Assignments {
		fmt.Printf("-> ask %-6s (cos %.3f): %q\n",
			userNames[a.Consumer], a.Similarity, questions[a.Item])
	}
}
