package socialmatch

// One benchmark per table and figure of the paper's evaluation section.
// Each benchmark regenerates the corresponding experiment (on corpora
// scaled down so a single iteration stays in seconds; `go test -bench
// -short` scales further) and reports the headline quantities as custom
// metrics, so `go test -bench=.` prints the same rows/series the paper
// reports. EXPERIMENTS.md records the full-scale numbers produced by
// cmd/experiments.

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/mapreduce"
	"repro/internal/simjoin"
)

// benchConfig picks the corpus scale for benchmarks.
func benchConfig(b *testing.B) experiments.Config {
	cfg := experiments.Defaults()
	cfg.Scale = 0.2
	if testing.Short() {
		cfg.Scale = 0.08
	}
	return cfg
}

// BenchmarkTable1DatasetCharacteristics regenerates Table 1: dataset
// sizes and the number of positive-similarity pairs.
func BenchmarkTable1DatasetCharacteristics(b *testing.B) {
	cfg := benchConfig(b)
	var rows []experiments.Table1Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Table1(cfg)
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.NumEdges), r.Dataset+"_edges")
	}
}

// qualityBench runs one Figure 1/2/3 panel and reports the paper's
// headline comparisons: the GreedyMR-vs-StackMR value advantage and the
// iteration counts at the densest sweep point.
func qualityBench(b *testing.B, ds string) {
	cfg := benchConfig(b)
	ctx := context.Background()
	var res *experiments.QualityResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Quality(ctx, cfg, ds)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := res.Rows[len(res.Rows)-1]
	b.ReportMetric(100*res.GreedyMRAdvantage(), "greedy_adv_%")
	b.ReportMetric(float64(last.Edges), "edges")
	b.ReportMetric(float64(last.GreedyMRRounds), "greedymr_rounds")
	b.ReportMetric(float64(last.StackMRRounds), "stackmr_rounds")
}

// BenchmarkFigure1FlickrSmall regenerates Figure 1 (flickr-small:
// matching value and iterations vs number of edges).
func BenchmarkFigure1FlickrSmall(b *testing.B) { qualityBench(b, "flickr-small") }

// BenchmarkFigure2FlickrLarge regenerates Figure 2 (flickr-large).
func BenchmarkFigure2FlickrLarge(b *testing.B) { qualityBench(b, "flickr-large") }

// BenchmarkFigure3YahooAnswers regenerates Figure 3 (yahoo-answers).
func BenchmarkFigure3YahooAnswers(b *testing.B) { qualityBench(b, "yahoo-answers") }

// BenchmarkFigure4CapacityViolations regenerates Figure 4: StackMR's
// average relative capacity violation ε′ across (ε, α, σ).
func BenchmarkFigure4CapacityViolations(b *testing.B) {
	cfg := benchConfig(b)
	ctx := context.Background()
	var worstFlickr, worstYahoo float64
	for i := 0; i < b.N; i++ {
		rf, err := experiments.Violations(ctx, cfg, "flickr-large",
			[]float64{1}, []float64{1, 2})
		if err != nil {
			b.Fatal(err)
		}
		ry, err := experiments.Violations(ctx, cfg, "yahoo-answers",
			[]float64{1}, []float64{1, 2})
		if err != nil {
			b.Fatal(err)
		}
		worstFlickr, worstYahoo = rf.MaxEpsPrime(), ry.MaxEpsPrime()
	}
	b.ReportMetric(100*worstFlickr, "flickr_eps'_%")
	b.ReportMetric(100*worstYahoo, "yahoo_eps'_%")
}

// BenchmarkFigure5GreedyMRConvergence regenerates Figure 5: the fraction
// of GreedyMR iterations needed to reach 95% of the final value.
func BenchmarkFigure5GreedyMRConvergence(b *testing.B) {
	cfg := benchConfig(b)
	ctx := context.Background()
	for _, ds := range []string{"flickr-small", "flickr-large", "yahoo-answers"} {
		ds := ds
		b.Run(ds, func(b *testing.B) {
			var res *experiments.ConvergenceResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = experiments.Convergence(ctx, cfg, ds)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(100*res.FractionTo95(), "rounds_to_95%_%")
			b.ReportMetric(float64(res.Rounds), "rounds")
		})
	}
}

// BenchmarkFigure6SimilarityDistribution regenerates Figure 6: the
// distribution of edge similarities per dataset.
func BenchmarkFigure6SimilarityDistribution(b *testing.B) {
	cfg := benchConfig(b)
	corpora := cfg.Datasets()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range corpora {
			res := experiments.SimilarityDistribution(c)
			if i == b.N-1 {
				b.ReportMetric(res.Summary.P99, c.Name+"_p99")
			}
		}
	}
}

// BenchmarkFigure7CapacityDistribution regenerates Figure 7: the
// distribution of node capacities per dataset.
func BenchmarkFigure7CapacityDistribution(b *testing.B) {
	cfg := benchConfig(b)
	corpora := cfg.Datasets()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range corpora {
			for _, side := range []graph.Side{graph.ItemSide, graph.ConsumerSide} {
				res, err := experiments.CapacityDistribution(c, cfg.Alpha, side)
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 && side == graph.ConsumerSide {
					b.ReportMetric(res.Summary.GiniCoefficent, c.Name+"_gini")
				}
			}
		}
	}
}

// --- component benchmarks: the substrates on fixed workloads ---

// benchGraph builds a mid-size synthetic matching instance.
func benchGraph(seed int64) *graph.Bipartite {
	return dataset.Synthetic(dataset.SyntheticConfig{
		NumItems: 3000, NumConsumers: 600, MeanDegree: 10,
		DegreeAlpha: 1.4, WeightScale: 1, CapacityAlpha: 1.2,
		CapacityMax: 60, Seed: seed,
	})
}

// BenchmarkGreedyCentralized measures the sequential greedy baseline.
func BenchmarkGreedyCentralized(b *testing.B) {
	g := benchGraph(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := core.Greedy(g)
		if res.Matching.Size() == 0 {
			b.Fatal("empty matching")
		}
	}
}

// BenchmarkGreedyMR measures the MapReduce greedy on the same instance.
func BenchmarkGreedyMR(b *testing.B) {
	g := benchGraph(1)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.GreedyMR(ctx, g, core.GreedyMROptions{})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(res.Rounds), "rounds")
		}
	}
}

// BenchmarkStackMR measures the stack algorithm on the same instance.
func BenchmarkStackMR(b *testing.B) {
	g := benchGraph(1)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.StackMR(ctx, g, core.StackOptions{Eps: 1, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(res.Rounds), "rounds")
			b.ReportMetric(res.Matching.Violation(), "eps'")
		}
	}
}

// --- ablation benchmarks for the design choices DESIGN.md calls out ---

// BenchmarkAblationStrictVsRelaxed quantifies why the paper evaluates
// Algorithm 2 ((1+ε) violations) instead of Algorithm 1 (strict): the
// overflow-resolution phase costs extra MapReduce rounds.
func BenchmarkAblationStrictVsRelaxed(b *testing.B) {
	g := benchGraph(3)
	ctx := context.Background()
	for _, variant := range []string{"relaxed", "strict"} {
		variant := variant
		b.Run(variant, func(b *testing.B) {
			var rounds int
			var value float64
			for i := 0; i < b.N; i++ {
				var res *core.Result
				var err error
				if variant == "strict" {
					res, err = core.StackMRStrict(ctx, g, core.StackOptions{Eps: 1, Seed: 1})
				} else {
					res, err = core.StackMR(ctx, g, core.StackOptions{Eps: 1, Seed: 1})
				}
				if err != nil {
					b.Fatal(err)
				}
				rounds, value = res.Rounds, res.Matching.Value()
			}
			b.ReportMetric(float64(rounds), "rounds")
			b.ReportMetric(value, "value")
		})
	}
}

// BenchmarkAblationMarkingStrategy compares the random marking of
// StackMR with the heaviest-edges marking of StackGreedyMR (Section 6,
// "Variants").
func BenchmarkAblationMarkingStrategy(b *testing.B) {
	g := benchGraph(4)
	ctx := context.Background()
	for _, strategy := range []core.MarkingStrategy{core.MarkRandom, core.MarkHeaviest} {
		strategy := strategy
		b.Run(strategy.String(), func(b *testing.B) {
			var value float64
			var rounds int
			for i := 0; i < b.N; i++ {
				res, err := core.StackMR(ctx, g, core.StackOptions{
					Eps: 1, Seed: 1, Strategy: strategy,
				})
				if err != nil {
					b.Fatal(err)
				}
				value, rounds = res.Matching.Value(), res.Rounds
			}
			b.ReportMetric(value, "value")
			b.ReportMetric(float64(rounds), "rounds")
		})
	}
}

// BenchmarkAblationEpsSweep shows the ε trade-off of Theorem 1: smaller
// ε means thinner layers (more rounds) but smaller capacity violations.
func BenchmarkAblationEpsSweep(b *testing.B) {
	g := benchGraph(5)
	ctx := context.Background()
	for _, eps := range []float64{0.25, 0.5, 1} {
		eps := eps
		b.Run(fmt.Sprintf("eps=%.2f", eps), func(b *testing.B) {
			var res *core.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = core.StackMR(ctx, g, core.StackOptions{Eps: eps, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Rounds), "rounds")
			b.ReportMetric(100*res.Matching.Violation(), "eps'_%")
			b.ReportMetric(res.Matching.MaxViolationFactor(), "max_stretch")
		})
	}
}

// BenchmarkAblationCombiner measures the shuffle reduction a combiner
// buys on an aggregation-heavy job (term counting over a corpus), the
// lever Section 3.1 alludes to when calling the shuffle the dominant
// cost.
func BenchmarkAblationCombiner(b *testing.B) {
	cfg := dataset.FlickrSmallConfig()
	cfg.NumItems, cfg.NumConsumers = 1000, 200
	c := dataset.Flickr("combine", cfg)
	input := make([]mapreduce.Pair[int32, int], len(c.Items))
	for i := range c.Items {
		input[i] = mapreduce.P(int32(i), i)
	}
	mapFn := func(i int32, _ int, out mapreduce.Emitter[int32, float64]) error {
		for _, e := range c.Items[i].Entries() {
			out.Emit(int32(e.Term), e.Weight)
		}
		return nil
	}
	redFn := func(t int32, ws []float64, out mapreduce.Emitter[int32, float64]) error {
		s := 0.0
		for _, w := range ws {
			s += w
		}
		out.Emit(t, s)
		return nil
	}
	ctx := context.Background()
	for _, withCombiner := range []bool{false, true} {
		withCombiner := withCombiner
		name := "off"
		if withCombiner {
			name = "on"
		}
		b.Run("combiner="+name, func(b *testing.B) {
			var shuffled int64
			for i := 0; i < b.N; i++ {
				var st *mapreduce.Stats
				var err error
				if withCombiner {
					_, st, err = mapreduce.RunCombined(ctx, mapreduce.Config{Mappers: 4, Reducers: 4},
						input, mapFn,
						func(_ int32, ws []float64) []float64 {
							s := 0.0
							for _, w := range ws {
								s += w
							}
							return []float64{s}
						}, redFn)
				} else {
					_, st, err = mapreduce.Run(ctx, mapreduce.Config{Mappers: 4, Reducers: 4},
						input, mapFn, redFn)
				}
				if err != nil {
					b.Fatal(err)
				}
				shuffled = st.ShuffleRecords
			}
			b.ReportMetric(float64(shuffled), "shuffle_records")
		})
	}
}

// BenchmarkAblationPrefixFilter compares the prefix-filtered similarity
// join (Section 5.1, after Baraglia et al.) with the naive full-index
// join: identical output, fewer candidates and postings.
func BenchmarkAblationPrefixFilter(b *testing.B) {
	// Unit-normalized tf·idf vectors (the yahoo-answers preprocessing)
	// give the suffix bound its pruning power; raw tag counts have
	// per-term maxima too large to prune much.
	cfg := dataset.AnswersScaledConfig()
	cfg.NumItems, cfg.NumConsumers = 900, 250
	c := dataset.Answers("ablation", cfg)
	ctx := context.Background()
	const sigma = 0.3
	for _, mode := range []string{"full-index", "prefix-filter"} {
		mode := mode
		b.Run(mode, func(b *testing.B) {
			var res *simjoin.Result
			var err error
			for i := 0; i < b.N; i++ {
				if mode == "prefix-filter" {
					res, err = simjoin.Join(ctx, c.Items, c.Consumers, sigma, simjoin.Options{})
				} else {
					res, err = simjoin.JoinFullIndex(ctx, c.Items, c.Consumers, sigma, simjoin.Options{})
				}
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Candidates), "candidates")
			b.ReportMetric(float64(res.PostingEntries), "postings")
			b.ReportMetric(float64(res.Shuffle.ShuffleRecords), "shuffle_records")
		})
	}
}

// BenchmarkScalability regenerates the paper's scaling claim: StackMR's
// round count stays nearly flat as the graph doubles repeatedly, while
// GreedyMR's grows.
func BenchmarkScalability(b *testing.B) {
	cfg := benchConfig(b)
	ctx := context.Background()
	base, steps := 400, 4
	if testing.Short() {
		base, steps = 200, 3
	}
	var res *experiments.ScalabilityResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Scalability(ctx, cfg, base, steps)
		if err != nil {
			b.Fatal(err)
		}
	}
	g, s := res.RoundGrowth()
	b.ReportMetric(g, "greedymr_round_growth")
	b.ReportMetric(s, "stackmr_round_growth")
	b.ReportMetric(float64(res.Rows[len(res.Rows)-1].Edges), "max_edges")
}

// BenchmarkExactFlowOracle measures the exact min-cost-flow solver on a
// small instance (the paper's motivation for approximation: exact
// algorithms do not scale).
func BenchmarkExactFlowOracle(b *testing.B) {
	g := dataset.Synthetic(dataset.SyntheticConfig{
		NumItems: 300, NumConsumers: 80, MeanDegree: 6,
		DegreeAlpha: 1.5, WeightScale: 1, CapacityAlpha: 1.3,
		CapacityMax: 10, Seed: 8,
	})
	b.ResetTimer()
	var opt float64
	for i := 0; i < b.N; i++ {
		_, v, err := flow.MaxWeightBMatching(g)
		if err != nil {
			b.Fatal(err)
		}
		opt = v
	}
	b.ReportMetric(opt, "opt_value")
}

// BenchmarkSimilarityJoin measures the MapReduce prefix-filter join
// against the number of candidates it prunes.
func BenchmarkSimilarityJoin(b *testing.B) {
	cfg := dataset.FlickrSmallConfig()
	cfg.NumItems, cfg.NumConsumers = 800, 200
	c := dataset.Flickr("bench", cfg)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := simjoin.Join(ctx, c.Items, c.Consumers, 4, simjoin.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(res.Candidates), "candidates")
			b.ReportMetric(float64(len(res.Edges)), "edges")
		}
	}
}
