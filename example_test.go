package socialmatch_test

import (
	"context"
	"fmt"

	socialmatch "repro"
)

// ExampleMatch computes a b-matching over a hand-built bipartite graph:
// three content items, two consumers, similarity-weighted edges, and
// per-node capacities. GreedyMR is deterministic, so the matched value
// is stable.
func ExampleMatch() {
	g := socialmatch.NewGraph(3, 2)
	g.SetCapacity(g.ItemID(0), 1)
	g.SetCapacity(g.ItemID(1), 1)
	g.SetCapacity(g.ItemID(2), 1)
	g.SetCapacity(g.ConsumerID(0), 2) // consumer 0 can receive two items
	g.SetCapacity(g.ConsumerID(1), 1)
	g.AddEdge(g.ItemID(0), g.ConsumerID(0), 1.5)
	g.AddEdge(g.ItemID(1), g.ConsumerID(0), 0.5)
	g.AddEdge(g.ItemID(2), g.ConsumerID(1), 2.0)

	res, err := socialmatch.Match(context.Background(), g, socialmatch.Options{
		Algorithm: socialmatch.GreedyMRAlgorithm,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("matched %d edges, total similarity %.1f\n",
		res.Matching.Size(), res.Matching.Value())
	// Output:
	// matched 3 edges, total similarity 4.0
}

// ExamplePipeline_Run drives the paper's full system: term vectors in,
// assignments out. The similarity join keeps item-consumer pairs with
// dot product at least Sigma, consumer capacities follow the activity
// proxy, and the matching distributes items under those capacities.
func ExamplePipeline_Run() {
	v := func(entries ...socialmatch.VectorEntry) socialmatch.Vector {
		return socialmatch.NewVector(entries)
	}
	e := func(term int, w float64) socialmatch.VectorEntry {
		return socialmatch.VectorEntry{Term: socialmatch.TermID(term), Weight: w}
	}
	items := []socialmatch.Vector{
		v(e(1, 1.0), e(2, 0.5)), // item 0: mostly term 1
		v(e(2, 1.0), e(3, 1.0)), // item 1: terms 2 and 3
	}
	consumers := []socialmatch.Vector{
		v(e(1, 0.9), e(2, 0.2)), // consumer 0 prefers term 1
		v(e(3, 1.0)),            // consumer 1 prefers term 3
	}
	activity := []float64{1, 1} // one delivery slot per consumer

	rep, err := socialmatch.Pipeline{
		Sigma: 0.5,
		Match: socialmatch.Options{Algorithm: socialmatch.GreedyMRAlgorithm},
	}.Run(context.Background(), items, consumers, activity)
	if err != nil {
		panic(err)
	}
	fmt.Printf("candidate edges: %d\n", rep.CandidateEdges)
	for _, a := range rep.Assignments {
		fmt.Printf("item %d -> consumer %d (similarity %.1f)\n",
			a.Item, a.Consumer, a.Similarity)
	}
	// Output:
	// candidate edges: 2
	// item 0 -> consumer 0 (similarity 1.0)
	// item 1 -> consumer 1 (similarity 1.0)
}
