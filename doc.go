// Package socialmatch reproduces "Social Content Matching in MapReduce"
// (De Francisci Morales, Gionis, Sozio; PVLDB 4(7), 2011): distributing
// content items to consumers in social-media applications by solving
// approximate maximum-weight b-matching entirely in the MapReduce model.
//
// The package is a facade over the building blocks in internal/:
//
//   - internal/mapreduce — the in-memory MapReduce engine (the paper's
//     Hadoop substrate);
//   - internal/simjoin — candidate-edge generation by prefix-filtered
//     similarity join (Section 5.1);
//   - internal/core — the matching algorithms: GreedyMR, StackMR,
//     StackGreedyMR, plus centralized references (Sections 5.2-5.4);
//   - internal/dataset, internal/capacity — synthetic stand-ins for the
//     paper's datasets and the Section-4 capacity policies;
//   - internal/experiments — the harness regenerating every table and
//     figure of Section 6.
//
// Quick start:
//
//	g := socialmatch.NewGraph(numItems, numConsumers)
//	g.AddEdge(item, consumer, weight)   // similarity-weighted edges
//	g.SetCapacity(node, b)              // per-node budgets
//	rep, err := socialmatch.Match(ctx, g, socialmatch.Options{
//		Algorithm: socialmatch.GreedyMRAlgorithm,
//	})
//
// or run the full pipeline from term vectors with Pipeline.Run, which
// joins items to consumers at a similarity threshold, applies the
// activity-based capacities, and matches.
package socialmatch
