package socialmatch

import (
	"context"
	"testing"
)

func buildToyGraph(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph(2, 2)
	g.SetCapacity(0, 1)
	g.SetCapacity(1, 1)
	g.SetCapacity(2, 1)
	g.SetCapacity(3, 1)
	g.AddEdge(0, 2, 2)
	g.AddEdge(1, 2, 1)
	g.AddEdge(1, 3, 3)
	return g
}

func TestMatchAllAlgorithms(t *testing.T) {
	ctx := context.Background()
	for _, alg := range Algorithms() {
		g := buildToyGraph(t)
		res, err := Match(ctx, g, Options{Algorithm: alg, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if res.Matching.Size() == 0 {
			t.Errorf("%s: empty matching", alg)
		}
		// OPT takes edges of weight 2 and 3 (value 5). The greedy
		// algorithms guarantee 1/2 of that and actually find all of it;
		// the stack algorithms only guarantee 1/(6+ε).
		minValue := 5.0
		switch alg {
		case StackMRAlgorithm, StackGreedyMRAlgorithm, StackMRStrictAlgorithm,
			StackSequentialAlgorithm:
			minValue = 5.0 / 7
		}
		if res.Matching.Value() < minValue {
			t.Errorf("%s: value %v below guarantee %v", alg, res.Matching.Value(), minValue)
		}
	}
}

func TestMatchDefaultsToGreedyMR(t *testing.T) {
	g := buildToyGraph(t)
	res, err := Match(context.Background(), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matching.Value() != 5 {
		t.Errorf("default match value %v, want 5", res.Matching.Value())
	}
}

func TestMatchUnknownAlgorithm(t *testing.T) {
	g := buildToyGraph(t)
	if _, err := Match(context.Background(), g, Options{Algorithm: "bogus"}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	// Two items, three consumers, clear topical structure.
	items := []Vector{
		NewVector([]VectorEntry{{Term: 1, Weight: 1}, {Term: 2, Weight: 1}}), // topic A
		NewVector([]VectorEntry{{Term: 7, Weight: 2}}),                       // topic B
	}
	consumers := []Vector{
		NewVector([]VectorEntry{{Term: 1, Weight: 2}}),                       // likes A
		NewVector([]VectorEntry{{Term: 7, Weight: 1}}),                       // likes B
		NewVector([]VectorEntry{{Term: 2, Weight: 1}, {Term: 7, Weight: 1}}), // both
	}
	rep, err := Pipeline{
		Sigma: 1,
		Alpha: 1,
		Match: Options{Algorithm: GreedyMRAlgorithm},
	}.Run(context.Background(), items, consumers, []float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.JoinRounds != 2 {
		t.Errorf("JoinRounds = %d, want 2", rep.JoinRounds)
	}
	if rep.CandidateEdges == 0 || len(rep.Assignments) == 0 {
		t.Fatalf("empty pipeline result: %+v", rep)
	}
	if rep.Violation != 0 {
		t.Errorf("GreedyMR must be feasible, violation %v", rep.Violation)
	}
	for _, a := range rep.Assignments {
		if a.Item < 0 || a.Item >= len(items) || a.Consumer < 0 || a.Consumer >= len(consumers) {
			t.Errorf("assignment out of range: %+v", a)
		}
		if a.Similarity < 1 {
			t.Errorf("assignment below sigma: %+v", a)
		}
	}
}

func TestPipelineQualityProportional(t *testing.T) {
	items := []Vector{
		NewVector([]VectorEntry{{Term: 1, Weight: 1}}),
		NewVector([]VectorEntry{{Term: 1, Weight: 1}}),
	}
	consumers := []Vector{
		NewVector([]VectorEntry{{Term: 1, Weight: 5}}),
	}
	rep, err := Pipeline{
		Sigma:   1,
		Quality: []float64{1, 0}, // all bandwidth to item 0
		Match:   Options{Algorithm: GreedyAlgorithm},
	}.Run(context.Background(), items, consumers, []float64{2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Assignments) == 0 {
		t.Fatal("no assignments")
	}
}

func TestPipelineRejectsBadSigma(t *testing.T) {
	if _, err := (Pipeline{Sigma: 0}).Run(context.Background(), nil, nil, nil); err == nil {
		t.Error("sigma=0 accepted")
	}
}
